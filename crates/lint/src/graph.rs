//! The workspace symbol table and call graph over
//! `crates/{core,index,xml,obs}`.
//!
//! Resolution is deliberately conservative (an unresolved method call
//! falls back to *every* workspace function with that name, minus a
//! blacklist of ubiquitous std container methods), so reachability is an
//! over-approximation: L6 can only over-count, never miss, and the
//! per-entry-point ratchet in `lint-baseline.json` keeps the
//! over-approximation from growing.

use crate::parser::{self, Event, ParsedFile, PanicKind};
use std::collections::{BTreeMap, BTreeSet};

/// Index of a function in [`Workspace::fns`].
pub type FnId = usize;

/// Hot modules: division is a panic site here (L6) and allocation inside
/// loops is forbidden here (L8, the `core` subset below).
pub const HOT_MODULES: &[&str] = &[
    "crates/core/src/joinbased.rs",
    "crates/core/src/diskexec.rs",
    "crates/core/src/topk.rs",
    "crates/core/src/shard.rs",
    "crates/index/src/cache.rs",
    "crates/index/src/codec.rs",
    "crates/index/src/disk.rs",
    "crates/index/src/diskcol.rs",
];

/// The subset of [`HOT_MODULES`] where L8 (allocation-in-loop) applies:
/// the Algorithm-1 join, the disk executor, the top-K star join, the
/// shard scatter/merge, the four block-decode modules — since the
/// arena rework, the cold decode path must allocate only through the
/// reused [`DecodeScratch`](../../index/src/codec.rs) buffers — and the
/// planner's cost/cache pair, which sits on the per-request serving
/// path: a plan-cache hit must stay allocation-free and the cost model
/// walks every term's level stats per plan, so any fresh allocation
/// inside a loop here needs a written reason.
pub const L8_MODULES: &[&str] = &[
    "crates/core/src/joinbased.rs",
    "crates/core/src/diskexec.rs",
    "crates/core/src/topk.rs",
    "crates/core/src/shard.rs",
    "crates/core/src/plan/cost.rs",
    "crates/core/src/plan/cache.rs",
    "crates/index/src/cache.rs",
    "crates/index/src/codec.rs",
    "crates/index/src/disk.rs",
    "crates/index/src/diskcol.rs",
];

/// Ubiquitous method names that resolve to std containers in practice; a
/// bare-name fallback on these would wire the graph to every workspace
/// type that happens to share the name.
const BARE_METHOD_SKIP: &[&str] = &[
    "all", "and_then", "any", "as_bytes", "as_deref", "as_mut", "as_ref", "as_slice", "as_str",
    "binary_search", "chain", "checked_add", "checked_mul", "checked_sub", "clear", "clone",
    "cloned", "cmp", "collect", "compare_exchange", "contains", "contains_key", "copied", "count",
    "dedup", "default", "drain", "entry", "enumerate", "eq", "extend", "fetch_add", "fetch_or",
    "fetch_sub", "filter", "filter_map", "find", "find_map", "first", "flat_map", "flatten",
    "flush", "fold", "from", "get", "get_mut", "get_or_insert", "insert", "into", "into_iter",
    "is_empty", "is_none", "is_some", "is_some_and", "iter", "iter_mut", "join", "keys", "last",
    "len", "load", "lock", "map", "map_err", "max", "max_by", "max_by_key", "min", "min_by",
    "min_by_key", "new", "next", "ok_or", "ok_or_else", "open", "or_else", "or_insert",
    "or_insert_with", "partial_cmp", "peek", "pop", "position", "push", "push_str", "read",
    "read_exact", "recv", "remove", "resize", "rev", "reverse", "saturating_sub", "seek", "send",
    "skip", "sort", "sort_by", "sort_by_key", "sort_unstable", "sort_unstable_by", "split",
    "starts_with", "store", "sum", "swap", "take", "then", "to_owned", "to_string", "touch", "trim",
    "truncate", "unwrap", "unwrap_or", "unwrap_or_default", "unwrap_or_else", "values",
    "values_mut", "windows", "with_capacity", "wrapping_mul", "write", "zip",
];

/// One fully resolved function with its events and resolved call edges.
pub struct FnInfo {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Index into that file's `fns`.
    pub local: usize,
    /// `xtk_core::Engine::run` / `xtk_core::joinbased::join_search`.
    pub qual: String,
    pub events: Vec<Event>,
    /// Resolved callees, deduplicated and sorted.
    pub calls: Vec<FnId>,
    /// Direct (non-allowed) panic sites: `(kind, line)`.
    pub panics: Vec<(PanicKind, u32)>,
}

/// The analyzed workspace: parsed files, the symbol table and the call
/// graph with per-function transitive facts.
pub struct Workspace {
    pub files: Vec<ParsedFile>,
    pub fns: Vec<FnInfo>,
    by_name: BTreeMap<String, Vec<FnId>>,
    by_owner: BTreeMap<(String, String), Vec<FnId>>,
}

impl Workspace {
    /// Builds the workspace model from every parsed file (files outside
    /// the analyzed crates are carried but contribute no functions).
    pub fn build(files: Vec<ParsedFile>) -> Workspace {
        // Global lock table and guard-returning helpers.
        let mut lock_decls: BTreeMap<String, String> = BTreeMap::new();
        let mut guard_fns: BTreeMap<String, String> = BTreeMap::new();
        for pf in files.iter().filter(|pf| pf.krate.is_some()) {
            for (name, inner) in &pf.lock_decls {
                lock_decls.entry(name.clone()).or_insert_with(|| inner.clone());
            }
            for f in pf.fns.iter().filter(|f| !f.in_test) {
                if let Some(p) = f.ret.iter().position(|t| {
                    matches!(t.as_str(), "MutexGuard" | "RwLockReadGuard" | "RwLockWriteGuard")
                }) {
                    if let Some(inner) = f.ret.get(p + 1) {
                        guard_fns.entry(f.name.clone()).or_insert_with(|| inner.clone());
                    }
                }
            }
        }

        // Symbol table + events.
        let mut fns: Vec<FnInfo> = Vec::new();
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut by_owner: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        for (file_idx, pf) in files.iter().enumerate() {
            let Some(krate) = pf.krate else { continue };
            let hot = HOT_MODULES.contains(&pf.rel.as_str());
            let ctx = parser::EventCtx { lock_decls: &lock_decls, guard_fns: &guard_fns, hot };
            let module = pf
                .rel
                .rsplit('/')
                .next()
                .and_then(|f| f.strip_suffix(".rs"))
                .unwrap_or("mod");
            for (local, f) in pf.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                let id = fns.len();
                let qual = match &f.owner {
                    Some(owner) => format!("{krate}::{owner}::{}", f.name),
                    None => format!("{krate}::{module}::{}", f.name),
                };
                let events = parser::events(pf, local, &ctx);
                let panics = events
                    .iter()
                    .filter_map(|e| match e {
                        Event::Panic { kind, line } => Some((*kind, *line)),
                        _ => None,
                    })
                    .collect();
                by_name.entry(f.name.clone()).or_default().push(id);
                if let Some(owner) = &f.owner {
                    by_owner.entry((owner.clone(), f.name.clone())).or_default().push(id);
                }
                if let Some(tr) = &f.trait_name {
                    by_owner.entry((tr.clone(), f.name.clone())).or_default().push(id);
                }
                fns.push(FnInfo { file: file_idx, local, qual, events, calls: Vec::new(), panics });
            }
        }

        let mut ws = Workspace { files, fns, by_name, by_owner };
        ws.resolve_calls();
        ws
    }

    fn def(&self, id: FnId) -> Option<(&ParsedFile, &parser::FnDef)> {
        let info = self.fns.get(id)?;
        let pf = self.files.get(info.file)?;
        let f = pf.fns.get(info.local)?;
        Some((pf, f))
    }

    /// The parsed definition behind a graph node.
    pub fn fn_def(&self, id: FnId) -> Option<&parser::FnDef> {
        self.def(id).map(|(_, f)| f)
    }

    /// Repo-relative file of a graph node.
    pub fn file_of(&self, id: FnId) -> &str {
        self.fns
            .get(id)
            .and_then(|i| self.files.get(i.file))
            .map(|pf| pf.rel.as_str())
            .unwrap_or("?")
    }

    /// Functions matching `(owner_or_trait, name)`.
    pub fn lookup_method(&self, owner: &str, name: &str) -> &[FnId] {
        self.by_owner.get(&(owner.to_string(), name.to_string())).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Functions matching a bare name.
    pub fn lookup_name(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    fn resolve_calls(&mut self) {
        let mut all_calls: Vec<Vec<FnId>> = Vec::with_capacity(self.fns.len());
        for id in 0..self.fns.len() {
            let mut callees: BTreeSet<FnId> = BTreeSet::new();
            let Some((pf, f)) = self.def(id) else {
                all_calls.push(Vec::new());
                continue;
            };
            let info = match self.fns.get(id) {
                Some(i) => i,
                None => {
                    all_calls.push(Vec::new());
                    continue;
                }
            };
            for ev in &info.events {
                let Event::Call { name, recv, qual, method, .. } = ev else { continue };
                if let Some(q) = qual {
                    // `Qual::name(...)`: the qualifier may be a type, a
                    // trait, `Self`, or a module path segment.  When it
                    // doesn't resolve it's usually a std type (`io::Error`,
                    // `Arc`, `Mutex`), so the bare-name fallback must skip
                    // ubiquitous names — `Error::new` linking to every
                    // workspace `new` would fuse the whole graph.
                    let owner = if q == "Self" {
                        f.owner.clone().unwrap_or_else(|| q.clone())
                    } else {
                        q.clone()
                    };
                    let hits = self.lookup_method(&owner, name);
                    if !hits.is_empty() {
                        callees.extend(hits.iter().copied());
                    } else if !BARE_METHOD_SKIP.contains(&name.as_str()) {
                        callees.extend(self.lookup_name(name).iter().copied());
                    }
                } else if *method {
                    // `recv.name(...)`: self, a typed binding, a known
                    // field, then the blacklisted bare-name fallback.
                    // Chained calls (`…).name(`) have no receiver ident and
                    // go straight to the guarded fallback.
                    let mut resolved = false;
                    if recv.as_deref() == Some("self") {
                        if let Some(owner) = &f.owner {
                            let hits = self.lookup_method(owner, name);
                            if !hits.is_empty() {
                                callees.extend(hits.iter().copied());
                                resolved = true;
                            }
                        }
                    }
                    if !resolved {
                        let tys = recv
                            .as_ref()
                            .and_then(|r| f.locals.get(r).or_else(|| pf.field_types.get(r)));
                        if let Some(tys) = tys {
                            for t in tys {
                                let hits = self.lookup_method(t, name);
                                if !hits.is_empty() {
                                    callees.extend(hits.iter().copied());
                                    resolved = true;
                                }
                            }
                        }
                    }
                    if !resolved && !BARE_METHOD_SKIP.contains(&name.as_str()) {
                        callees.extend(self.lookup_name(name).iter().copied());
                    }
                } else {
                    // Free call: exact-name resolution.
                    callees.extend(self.lookup_name(name).iter().copied());
                }
            }
            all_calls.push(callees.into_iter().collect());
        }
        for (info, calls) in self.fns.iter_mut().zip(all_calls) {
            info.calls = calls;
        }
    }

    /// All functions reachable from `entry` (inclusive), in BFS order,
    /// with the predecessor map for chain reconstruction.
    pub fn reachable(&self, entry: FnId) -> (Vec<FnId>, BTreeMap<FnId, FnId>) {
        let mut order = Vec::new();
        let mut pred: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut seen: BTreeSet<FnId> = BTreeSet::new();
        let mut queue = std::collections::VecDeque::new();
        seen.insert(entry);
        queue.push_back(entry);
        while let Some(id) = queue.pop_front() {
            order.push(id);
            let callees = self.fns.get(id).map(|i| i.calls.as_slice()).unwrap_or(&[]);
            for &c in callees {
                if seen.insert(c) {
                    pred.insert(c, id);
                    queue.push_back(c);
                }
            }
        }
        (order, pred)
    }

    /// The call chain `entry → … → target` as qualified names.
    pub fn chain(&self, pred: &BTreeMap<FnId, FnId>, entry: FnId, target: FnId) -> Vec<String> {
        let mut chain = vec![target];
        let mut cur = target;
        let mut steps = 0;
        while cur != entry && steps < 10_000 {
            match pred.get(&cur) {
                Some(&p) => {
                    chain.push(p);
                    cur = p;
                }
                None => break,
            }
            steps += 1;
        }
        chain.reverse();
        chain
            .iter()
            .map(|&id| self.fns.get(id).map(|i| i.qual.clone()).unwrap_or_default())
            .collect()
    }

    /// Fixpoint: for every function, the set of lock ids acquired by it
    /// or anything it transitively calls.
    pub fn transitive_locks(&self) -> Vec<BTreeSet<String>> {
        let mut locks: Vec<BTreeSet<String>> = self
            .fns
            .iter()
            .map(|i| {
                i.events
                    .iter()
                    .filter_map(|e| match e {
                        Event::Acquire { lock, .. } => Some(lock.clone()),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        loop {
            let mut changed = false;
            for id in 0..self.fns.len() {
                let callees = self.fns.get(id).map(|i| i.calls.clone()).unwrap_or_default();
                let mut add: Vec<String> = Vec::new();
                for c in callees {
                    if let Some(set) = locks.get(c) {
                        add.extend(set.iter().cloned());
                    }
                }
                if let Some(mine) = locks.get_mut(id) {
                    for l in add {
                        changed |= mine.insert(l);
                    }
                }
            }
            if !changed {
                return locks;
            }
        }
    }

    /// Fixpoint: can each function transitively reach the thread pool's
    /// submit point (`parallel_map`)?
    pub fn reaches_pool(&self) -> Vec<bool> {
        let mut reach: Vec<bool> = self
            .fns
            .iter()
            .map(|i| {
                self.def_name(i) == Some("parallel_map")
            })
            .collect();
        loop {
            let mut changed = false;
            for id in 0..self.fns.len() {
                if reach.get(id).copied().unwrap_or(false) {
                    continue;
                }
                let callees = self.fns.get(id).map(|i| i.calls.as_slice()).unwrap_or(&[]);
                if callees.iter().any(|&c| reach.get(c).copied().unwrap_or(false)) {
                    if let Some(slot) = reach.get_mut(id) {
                        *slot = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                return reach;
            }
        }
    }

    fn def_name<'a>(&'a self, info: &'a FnInfo) -> Option<&'a str> {
        self.files
            .get(info.file)
            .and_then(|pf| pf.fns.get(info.local))
            .map(|f| f.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files.iter().map(|(rel, src)| parser::parse(rel, src.to_string())).collect(),
        )
    }

    fn id_of(ws: &Workspace, qual: &str) -> FnId {
        ws.fns.iter().position(|i| i.qual == qual).expect("fn in graph")
    }

    #[test]
    fn resolves_self_typed_and_free_calls() {
        let w = ws(&[(
            "crates/core/src/engine.rs",
            r#"
            pub struct Engine;
            impl Engine {
                pub fn run(&self, q: &Query) -> u32 { self.helper(q) + free_fn(1) }
                fn helper(&self, q: &Query) -> u32 { 0 }
            }
            pub fn free_fn(x: u32) -> u32 { x }
            "#,
        )]);
        let run = id_of(&w, "xtk_core::Engine::run");
        let helper = id_of(&w, "xtk_core::Engine::helper");
        let free = id_of(&w, "xtk_core::engine::free_fn");
        let calls = &w.fns.get(run).expect("run").calls;
        assert!(calls.contains(&helper), "{calls:?}");
        assert!(calls.contains(&free), "{calls:?}");
    }

    #[test]
    fn cross_file_and_typed_receiver_resolution() {
        let w = ws(&[
            (
                "crates/core/src/a.rs",
                r#"
                pub fn driver(cache: &ResultCache) -> u32 { cache.lookup(1) }
                "#,
            ),
            (
                "crates/core/src/b.rs",
                r#"
                pub struct ResultCache;
                impl ResultCache {
                    pub fn lookup(&self, fp: u64) -> u32 { 0 }
                }
                "#,
            ),
        ]);
        let driver = id_of(&w, "xtk_core::a::driver");
        let lookup = id_of(&w, "xtk_core::ResultCache::lookup");
        assert!(w.fns.get(driver).expect("driver").calls.contains(&lookup));
    }

    #[test]
    fn blacklisted_bare_methods_do_not_link() {
        let w = ws(&[
            (
                "crates/core/src/a.rs",
                "pub fn f(m: &Foo) -> u32 { m.bar.get(0) }\n",
            ),
            (
                "crates/index/src/cache.rs",
                r#"
                pub struct ShardedLruCache;
                impl ShardedLruCache {
                    pub fn get(&self, key: u64) -> u64 { key }
                }
                "#,
            ),
        ]);
        let f = id_of(&w, "xtk_core::a::f");
        assert!(w.fns.get(f).expect("f").calls.is_empty(), "bare `get` must not link");
    }

    #[test]
    fn trait_name_resolution_links_impls() {
        let w = ws(&[(
            "crates/core/src/x.rs",
            r#"
            pub trait Executor { fn execute(&self) -> u32; }
            pub struct A;
            impl Executor for A { fn execute(&self) -> u32 { 1 } }
            pub fn drive(e: &dyn Executor) -> u32 { e.execute() }
            "#,
        )]);
        let drive = id_of(&w, "xtk_core::x::drive");
        let exec_a = w
            .fns
            .iter()
            .position(|i| i.qual == "xtk_core::A::execute")
            .expect("impl fn");
        assert!(w.fns.get(drive).expect("drive").calls.contains(&exec_a));
    }

    #[test]
    fn reachability_and_chains() {
        let w = ws(&[(
            "crates/core/src/c.rs",
            r#"
            pub fn entry(o: Option<u32>) -> u32 { mid(o) }
            fn mid(o: Option<u32>) -> u32 { deep(o) }
            fn deep(o: Option<u32>) -> u32 { o.unwrap() }
            pub fn clean(x: u32) -> u32 { x + 1 }
            "#,
        )]);
        let entry = id_of(&w, "xtk_core::c::entry");
        let deep = id_of(&w, "xtk_core::c::deep");
        let (order, pred) = w.reachable(entry);
        assert!(order.contains(&deep));
        let chain = w.chain(&pred, entry, deep);
        assert_eq!(
            chain,
            vec!["xtk_core::c::entry", "xtk_core::c::mid", "xtk_core::c::deep"]
        );
        let clean = id_of(&w, "xtk_core::c::clean");
        let (corder, _) = w.reachable(clean);
        assert_eq!(corder, vec![clean]);
        let panics: usize = order
            .iter()
            .map(|&id| w.fns.get(id).map(|i| i.panics.len()).unwrap_or(0))
            .sum();
        assert_eq!(panics, 1);
    }

    #[test]
    fn transitive_locks_and_pool_fixpoints() {
        let w = ws(&[
            (
                "crates/index/src/cache.rs",
                r#"
                pub struct Cache { inner: Mutex<Inner> }
                impl Cache {
                    pub fn get(&self) -> u32 { let g = self.inner.lock(); 1 }
                }
                "#,
            ),
            (
                "crates/core/src/d.rs",
                r#"
                pub fn uses_cache(c: &Cache) -> u32 { c.get() }
                pub fn fans_out(xs: &[u32]) -> u32 { parallel_map(xs); 0 }
                pub fn calls_fan(xs: &[u32]) -> u32 { fans_out(xs) }
                "#,
            ),
            (
                "crates/xml/src/pool.rs",
                "pub fn parallel_map(items: &[u32]) -> u32 { 0 }\n",
            ),
        ]);
        let locks = w.transitive_locks();
        let uses = id_of(&w, "xtk_core::d::uses_cache");
        assert!(locks.get(uses).is_some_and(|s| s.contains("Inner")), "lock flows to caller");
        let pool = w.reaches_pool();
        let calls_fan = id_of(&w, "xtk_core::d::calls_fan");
        assert!(pool.get(calls_fan).copied().unwrap_or(false));
        let get = id_of(&w, "xtk_index::Cache::get");
        assert!(!pool.get(get).copied().unwrap_or(true));
    }
}
