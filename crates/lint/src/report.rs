//! `lint-report.json` — the machine-readable output of a lint run —
//! plus the `--explain CODE` rule catalogue.
//!
//! The report schema is stable: keys are emitted in a fixed order,
//! collections are sorted, and the writer is hand-rolled (like
//! [`crate::baseline`]) so the byte output is deterministic across runs.
//! CI commits the report and validates it on every run.

use crate::hotloop::HotLoopReport;
use crate::locks::LockReport;
use crate::parser::PanicKind;
use crate::reach::EntryReport;
use crate::rules::Finding;
use std::collections::BTreeMap;

/// Everything a run produces, ready for serialization.
pub struct RunReport<'a> {
    /// Per-file L1 counts `(panic_sites, index_sites)`.
    pub l1: &'a BTreeMap<String, (u32, u32)>,
    /// Hard L2–L5 findings as `(file, finding)`.
    pub hard: &'a [(String, Finding)],
    pub l6: &'a [EntryReport],
    pub l7: &'a LockReport,
    pub l8: &'a HotLoopReport,
    /// L9 error-discard findings as `(file, line, what)`.
    pub l9: &'a [(String, u32, String)],
}

fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn kind_name(k: PanicKind) -> &'static str {
    match k {
        PanicKind::Macro => "panic_macro",
        PanicKind::Unwrap => "unwrap",
        PanicKind::Index => "index",
        PanicKind::Div => "div",
    }
}

impl<'a> RunReport<'a> {
    /// Serializes the full report with a trailing newline.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n  \"version\": 1,\n");

        // L1 totals.
        let (tp, tx) = self
            .l1
            .values()
            .fold((0u32, 0u32), |(p, x), &(fp, fx)| (p + fp, x + fx));
        s.push_str(&format!(
            "  \"l1\": {{ \"panic_sites\": {tp}, \"index_sites\": {tx}, \"files\": {} }},\n",
            self.l1.len()
        ));

        // Hard findings (L2–L5).
        s.push_str("  \"hard\": [");
        for (i, (file, f)) in self.hard.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    { \"file\": ");
            esc(file, &mut s);
            s.push_str(&format!(", \"line\": {}, \"rule\": ", f.line));
            esc(f.rule, &mut s);
            s.push_str(", \"what\": ");
            esc(&f.what, &mut s);
            s.push_str(" }");
        }
        if !self.hard.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");

        // L6: per-entry reachability.
        s.push_str("  \"l6\": {");
        for (i, r) in self.l6.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    ");
            esc(&r.qual, &mut s);
            s.push_str(&format!(
                ": {{ \"reachable_fns\": {}, \"panic_sites\": {}, \"paths\": [",
                r.fn_count, r.count
            ));
            for (j, p) in r.paths.iter().enumerate() {
                s.push_str(if j == 0 { "\n" } else { ",\n" });
                s.push_str("      { \"file\": ");
                esc(&p.file, &mut s);
                s.push_str(&format!(", \"line\": {}, \"kind\": \"{}\", \"chain\": [", p.line, kind_name(p.kind)));
                for (k, link) in p.chain.iter().enumerate() {
                    if k > 0 {
                        s.push_str(", ");
                    }
                    esc(link, &mut s);
                }
                s.push_str("] }");
            }
            if !r.paths.is_empty() {
                s.push_str("\n    ");
            }
            s.push_str("] }");
        }
        if !self.l6.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n");

        // L7: lock order.
        s.push_str("  \"l7\": {\n    \"locks\": [");
        for (i, l) in self.l7.locks.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            esc(l, &mut s);
        }
        s.push_str("],\n    \"edges\": [");
        for (i, e) in self.l7.edges.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("      { \"held\": ");
            esc(&e.held, &mut s);
            s.push_str(", \"acquired\": ");
            esc(&e.acquired, &mut s);
            s.push_str(", \"site\": ");
            esc(&e.site, &mut s);
            s.push_str(", \"in_fn\": ");
            esc(&e.in_fn, &mut s);
            s.push_str(" }");
        }
        if !self.l7.edges.is_empty() {
            s.push_str("\n    ");
        }
        s.push_str("],\n    \"cycles\": [");
        for (i, c) in self.l7.cycles.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push('[');
            for (j, l) in c.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                esc(l, &mut s);
            }
            s.push(']');
        }
        s.push_str("],\n    \"held_across_pool\": [");
        for (i, h) in self.l7.held_across_pool.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("      { \"lock\": ");
            esc(&h.lock, &mut s);
            s.push_str(", \"site\": ");
            esc(&h.site, &mut s);
            s.push_str(", \"in_fn\": ");
            esc(&h.in_fn, &mut s);
            s.push_str(" }");
        }
        if !self.l7.held_across_pool.is_empty() {
            s.push_str("\n    ");
        }
        s.push_str("]\n  },\n");

        // L8: hot-loop allocation.
        s.push_str("  \"l8\": {\n    \"findings\": [");
        for (i, f) in self.l8.findings.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("      { \"file\": ");
            esc(&f.file, &mut s);
            s.push_str(&format!(", \"line\": {}, \"what\": ", f.line));
            esc(&f.what, &mut s);
            s.push_str(&format!(
                ", \"depth\": {}, \"missing_reason\": {}, \"in_fn\": ",
                f.depth, f.missing_reason
            ));
            esc(&f.in_fn, &mut s);
            s.push_str(" }");
        }
        if !self.l8.findings.is_empty() {
            s.push_str("\n    ");
        }
        s.push_str("],\n    \"suppressed\": [");
        for (i, sp) in self.l8.suppressed.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("      { \"file\": ");
            esc(&sp.file, &mut s);
            s.push_str(&format!(", \"line\": {}, \"what\": ", sp.line));
            esc(&sp.what, &mut s);
            s.push_str(", \"reason\": ");
            esc(&sp.reason, &mut s);
            s.push_str(" }");
        }
        if !self.l8.suppressed.is_empty() {
            s.push_str("\n    ");
        }
        s.push_str("]\n  },\n");

        // L9: discarded Results.
        s.push_str("  \"l9\": [");
        for (i, (file, line, what)) in self.l9.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    { \"file\": ");
            esc(file, &mut s);
            s.push_str(&format!(", \"line\": {line}, \"what\": "));
            esc(what, &mut s);
            s.push_str(" }");
        }
        if !self.l9.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// The `--explain CODE` catalogue.  Returns `None` for unknown codes.
pub fn explain(code: &str) -> Option<&'static str> {
    let text = match code.to_ascii_uppercase().as_str() {
        "L1" => {
            "L1 — ratcheted panic freedom (per file)\n\n\
             Counts direct panic sites (`unwrap`/`expect`/`panic!`-family macros)\n\
             and slice-indexing sites (`a[i]`) per library file and compares them\n\
             against `lint-baseline.json`.  A file may never exceed its budget;\n\
             tighten with `--update-baseline` after reducing counts.\n\
             Suppress a genuinely safe site with `// lint:allow(panic)` or\n\
             `// lint:allow(index)` on the site's line or the line above."
        }
        "L2" => {
            "L2 — hash-iteration order\n\n\
             Iterating a `HashMap`/`HashSet` leaks nondeterministic ordering into\n\
             results, which breaks PR 1's serial/parallel bit-identity invariant.\n\
             Use `BTreeMap`/`BTreeSet` or sort before iterating."
        }
        "L3" => {
            "L3 — determinism hazards\n\n\
             Wall-clock reads (`std::time`) and float equality (`==` on f32/f64)\n\
             make runs non-reproducible.  Thread time in explicitly, and compare\n\
             floats with an epsilon or total ordering."
        }
        "L4" => {
            "L4 — forbid unsafe\n\n\
             Every crate root must carry `#![forbid(unsafe_code)]`.  The whole\n\
             workspace is safe Rust; this keeps it that way at compile time."
        }
        "L5" => {
            "L5 — no wall clock in obs\n\n\
             The observability crate must be deterministic: metrics and traces\n\
             derive from logical counters, never from `Instant::now()` or\n\
             `SystemTime`, so test runs and shard replicas agree byte-for-byte."
        }
        "L6" => {
            "L6 — interprocedural panic reachability (ratcheted per entry point)\n\n\
             For every public query-path entry point (`Engine::run`,\n\
             `DiskEngine::execute`, `ShardedEngine::execute`, `BatchExecutor::run`,\n\
             ...), xtk-lint builds the workspace call graph and sums the panic\n\
             sites (unwrap/expect, panic macros, slice indexing, and unchecked\n\
             `/`/`%` in hot modules) transitively reachable from it.  Each\n\
             entry's count is ratcheted in `lint-baseline.json` under\n\
             `entry_points` — it may fall, never rise.  The report lists one\n\
             example call chain per site; resolution is conservative, so treat\n\
             a chain as \"possibly reachable\", then either make the callee\n\
             infallible or return the error through the chain."
        }
        "L7" => {
            "L7 — lock-order cycles and locks held across the pool (hard fail)\n\n\
             xtk-lint harvests every Mutex/RwLock acquisition (BlockCache shards,\n\
             ResultCache, guard-returning helpers), tracks how long each guard\n\
             lives, and builds the lock-order graph: held A, then acquired B\n\
             (directly or through any call) adds the edge A → B.  Any cycle —\n\
             including re-acquiring a lock already held, which deadlocks std's\n\
             Mutex immediately — fails the build.  So does submitting to the\n\
             thread pool (`parallel_map`) while holding any lock: workers that\n\
             need the lock deadlock against the submitter.  There is no ratchet\n\
             and no suppression for L7: restructure so guards drop first."
        }
        "L8" => {
            "L8 — allocation in hot loops\n\n\
             Flags `Vec::new`, `vec![...]`, `.to_vec()`, `.collect()` and\n\
             `format!` inside any loop in the per-query hot modules (joinbased,\n\
             diskexec, topk, shard merge).  Such allocations multiply with the\n\
             result-set size; hoist the buffer out of the loop and reuse it.\n\
             When an in-loop allocation is genuinely required, suppress with a\n\
             reason: `// lint:allow(L8, bounded by k — runs once per shard)`.\n\
             A reasonless `lint:allow(L8)` is itself a finding."
        }
        "L9" => {
            "L9 — discarded Results\n\n\
             In crates/core and crates/index, `let _ = fallible();` and bare\n\
             `.ok();` silently swallow errors that the query path must surface.\n\
             Handle the error, propagate with `?`, or destructure the success\n\
             value.  (Applies when the callee is a workspace function whose\n\
             return type mentions `Result`.)"
        }
        _ => return None,
    };
    Some(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotloop::{HotAlloc, HotLoopReport, Suppressed};
    use crate::locks::{HeldAcrossPool, LockEdge, LockReport};
    use crate::reach::{EntryReport, PanicPath};

    fn sample<'a>(
        l1: &'a BTreeMap<String, (u32, u32)>,
        hard: &'a [(String, Finding)],
        l6: &'a [EntryReport],
        l7: &'a LockReport,
        l8: &'a HotLoopReport,
        l9: &'a [(String, u32, String)],
    ) -> String {
        RunReport { l1, hard, l6, l7, l8, l9 }.to_json()
    }

    #[test]
    fn empty_report_is_valid_and_stable() {
        let l1 = BTreeMap::new();
        let l7 = LockReport {
            locks: vec![],
            edges: vec![],
            cycles: vec![],
            held_across_pool: vec![],
        };
        let l8 = HotLoopReport { findings: vec![], suppressed: vec![] };
        let a = sample(&l1, &[], &[], &l7, &l8, &[]);
        let b = sample(&l1, &[], &[], &l7, &l8, &[]);
        assert_eq!(a, b, "writer must be deterministic");
        assert!(a.contains("\"version\": 1"));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn full_report_includes_all_sections() {
        let mut l1 = BTreeMap::new();
        l1.insert("crates/core/src/topk.rs".to_string(), (1u32, 2u32));
        let hard = vec![(
            "crates/obs/src/lib.rs".to_string(),
            Finding { rule: "L5", line: 3, what: "Instant::now".to_string() },
        )];
        let l6 = vec![EntryReport {
            qual: "xtk_core::Engine::run".to_string(),
            count: 1,
            fn_count: 4,
            paths: vec![PanicPath {
                file: "crates/core/src/topk.rs".to_string(),
                line: 10,
                kind: PanicKind::Unwrap,
                chain: vec![
                    "xtk_core::Engine::run".to_string(),
                    "xtk_core::topk::score".to_string(),
                ],
            }],
        }];
        let l7 = LockReport {
            locks: vec!["CacheInner".to_string(), "Shard".to_string()],
            edges: vec![LockEdge {
                held: "Shard".to_string(),
                acquired: "CacheInner".to_string(),
                site: "crates/index/src/cache.rs:42".to_string(),
                in_fn: "xtk_index::ShardedLruCache::get".to_string(),
            }],
            cycles: vec![],
            held_across_pool: vec![HeldAcrossPool {
                lock: "Shard".to_string(),
                site: "crates/core/src/shard.rs:7".to_string(),
                in_fn: "xtk_core::ShardedEngine::execute".to_string(),
            }],
        };
        let l8 = HotLoopReport {
            findings: vec![HotAlloc {
                file: "crates/core/src/topk.rs".to_string(),
                line: 12,
                what: "vec!".to_string(),
                depth: 1,
                in_fn: "xtk_core::topk::score".to_string(),
                missing_reason: false,
            }],
            suppressed: vec![Suppressed {
                file: "crates/core/src/shard.rs".to_string(),
                line: 5,
                what: "collect".to_string(),
                reason: "bounded by k".to_string(),
            }],
        };
        let l9 = vec![(
            "crates/core/src/batch.rs".to_string(),
            9u32,
            "let _ = flush()".to_string(),
        )];
        let json = sample(&l1, &hard, &l6, &l7, &l8, &l9);
        for needle in [
            "\"l1\"", "\"hard\"", "\"l6\"", "\"l7\"", "\"l8\"", "\"l9\"",
            "xtk_core::Engine::run", "\"kind\": \"unwrap\"", "\"held\": \"Shard\"",
            "\"held_across_pool\"", "bounded by k", "\"missing_reason\": false",
            "let _ = flush()",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn strings_are_escaped() {
        let l1 = BTreeMap::new();
        let hard = vec![(
            "a\"b.rs".to_string(),
            Finding { rule: "L2", line: 1, what: "tab\there".to_string() },
        )];
        let l7 = LockReport {
            locks: vec![],
            edges: vec![],
            cycles: vec![],
            held_across_pool: vec![],
        };
        let l8 = HotLoopReport { findings: vec![], suppressed: vec![] };
        let json = sample(&l1, &hard, &[], &l7, &l8, &[]);
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("tab\\there"));
    }

    #[test]
    fn explain_covers_all_rules_and_rejects_unknown() {
        for code in ["L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9", "l6"] {
            assert!(explain(code).is_some(), "missing explain for {code}");
        }
        assert!(explain("L10").is_none());
        assert!(explain("").is_none());
        assert!(explain("panic").is_none());
    }
}
