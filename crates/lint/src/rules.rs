//! The project lint rules, evaluated over the token stream of one file.
//!
//! * **L1 (ratcheted)** — panic freedom in non-test library code: no
//!   `unwrap()`/`expect()`, no `panic!`/`todo!`/`unimplemented!`/
//!   `unreachable!`, and no indexing into slices (`x[i]`, `x[a..b]`).
//!   These are *counted* per file and compared against the committed
//!   `lint-baseline.json`; only regressions fail the build.
//! * **L2 (hard)** — no `HashMap`/`HashSet` iteration feeding ordered
//!   output in `xtk-core`/`xtk-index`, unless a sort-or-aggregate
//!   consumer follows (or `// lint:allow(hash-iter)`).
//! * **L3 (hard)** — determinism hazards in `xtk-core`/`xtk-index`:
//!   `std::time` / `Instant` / `SystemTime`, and `==`/`!=` against float
//!   literals.
//! * **L4 (hard)** — `#![forbid(unsafe_code)]` must be present in every
//!   crate root.
//! * **L5 (hard)** — no wall-clock time (`std::time` / `Instant` /
//!   `SystemTime`) anywhere in `xtk-obs`: the observability layer's
//!   whole contract is logical sequence numbers, so traces stay
//!   bit-identical across machines and `Parallelism` settings.
//!
//! Code inside `#[cfg(test)]` / `#[test]` items is exempt from every
//! rule.  `// lint:allow(<rule>)` on the same or previous line suppresses
//! a finding; the rule names are `panic`, `index`, `hash-iter`, `time`
//! and `float-eq`.

use crate::lexer::{lex, Lexed, TokKind};
use std::collections::BTreeSet;

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule name: `panic`, `index`, `hash-iter`, `time`, `float-eq`,
    /// `forbid-unsafe`, `obs-time`.
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the site.
    pub what: String,
}

/// Which rule families apply to a file, derived from its repo-relative
/// path by [`classify`].
#[derive(Debug, Clone, Copy)]
pub struct FileClass {
    /// L1 applies: non-test library source.
    pub lib_code: bool,
    /// L2/L3 apply: query-execution crates (`xtk-core`, `xtk-index`).
    pub exec_scope: bool,
    /// L4 applies: a crate root (`src/lib.rs`).
    pub crate_root: bool,
    /// L5 applies: the observability crate (`xtk-obs`).
    pub obs_scope: bool,
}

/// The analysis result for one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// L1 `unwrap`/`expect`/panic-macro sites.
    pub panic_sites: Vec<Finding>,
    /// L1 slice-indexing sites.
    pub index_sites: Vec<Finding>,
    /// L2/L3/L4 violations — these always fail the run.
    pub hard: Vec<Finding>,
}

impl FileReport {
    /// `(panic_sites, index_sites)` counts for the ratchet baseline.
    pub fn l1_counts(&self) -> (u32, u32) {
        (self.panic_sites.len() as u32, self.index_sites.len() as u32)
    }
}

/// Derives the applicable rule families from a repo-relative path
/// (forward-slash separated).
pub fn classify(rel: &str) -> FileClass {
    let in_src = rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/"));
    let excluded = rel.contains("/tests/")
        || rel.starts_with("tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.starts_with("examples/")
        || rel.contains("/fixtures/")
        || rel.contains("/bin/");
    FileClass {
        lib_code: in_src && !excluded,
        exec_scope: !excluded
            && (rel.starts_with("crates/core/src/") || rel.starts_with("crates/index/src/")),
        crate_root: rel == "src/lib.rs"
            || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs")),
        obs_scope: !excluded && rel.starts_with("crates/obs/src/"),
    }
}

const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "union", "unsafe", "use", "where", "while", "yield",
];

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

const HASH_ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "drain"];

/// Idents that make hash iteration order-insensitive when they appear in
/// the consuming window: sorting, or order-independent aggregation.
fn is_order_insensitive(ident: &str) -> bool {
    ident.starts_with("sort")
        || matches!(
            ident,
            "sum" | "count" | "fold" | "all" | "any" | "min" | "max" | "len" | "is_empty"
                | "contains" | "contains_key" | "binary_search"
        )
}

/// Runs every applicable rule over `src`.
pub fn analyze(src: &str, class: &FileClass) -> FileReport {
    let lx = lex(src);
    let masked = test_mask(src, &lx);
    let a = Analyzer { src, lx: &lx, masked };
    let mut rep = FileReport::default();
    if class.lib_code {
        a.l1(&mut rep);
    }
    if class.exec_scope {
        a.l2(&mut rep);
        a.l3(&mut rep);
    }
    if class.crate_root {
        a.l4(&mut rep);
    }
    if class.obs_scope {
        a.l5(&mut rep);
    }
    rep
}

struct Analyzer<'a> {
    src: &'a str,
    lx: &'a Lexed,
    masked: Vec<bool>,
}

impl<'a> Analyzer<'a> {
    fn n(&self) -> usize {
        self.lx.tokens.len()
    }

    fn kind(&self, i: usize) -> Option<TokKind> {
        self.lx.tokens.get(i).map(|t| t.kind)
    }

    fn text(&self, i: usize) -> &'a str {
        self.lx.text(self.src, i)
    }

    fn line(&self, i: usize) -> u32 {
        self.lx.tokens.get(i).map(|t| t.line).unwrap_or(0)
    }

    fn is_masked(&self, i: usize) -> bool {
        self.masked.get(i).copied().unwrap_or(false)
    }

    fn push_hard(&self, rep: &mut FileReport, rule: &'static str, line: u32, what: String) {
        // One finding per (rule, line): the method rule and the for-loop
        // rule can both trigger on the same expression.
        if rep.hard.iter().any(|f| f.rule == rule && f.line == line) {
            return;
        }
        rep.hard.push(Finding { rule, line, what });
    }

    /// L1: panic sites and slice-indexing sites.
    fn l1(&self, rep: &mut FileReport) {
        for i in 0..self.n() {
            if self.is_masked(i) {
                continue;
            }
            match self.kind(i) {
                Some(TokKind::Ident) => {
                    let t = self.text(i);
                    let line = self.line(i);
                    if PANIC_MACROS.contains(&t)
                        && self.kind(i + 1) == Some(TokKind::Punct(b'!'))
                        && !self.lx.allowed(line, "panic")
                    {
                        rep.panic_sites.push(Finding {
                            rule: "panic",
                            line,
                            what: format!("`{t}!` in library code"),
                        });
                    }
                    if (t == "unwrap" || t == "expect")
                        && i > 0
                        && self.kind(i - 1) == Some(TokKind::Punct(b'.'))
                        && self.kind(i + 1) == Some(TokKind::Delim(b'('))
                        && !self.lx.allowed(line, "panic")
                    {
                        rep.panic_sites.push(Finding {
                            rule: "panic",
                            line,
                            what: format!("`.{t}(...)` in library code"),
                        });
                    }
                }
                Some(TokKind::Delim(b'[')) if i > 0 => {
                    let indexes = match self.kind(i - 1) {
                        Some(TokKind::Delim(b')')) | Some(TokKind::Delim(b']')) => true,
                        Some(TokKind::Ident) => !KEYWORDS.contains(&self.text(i - 1)),
                        _ => false,
                    };
                    let line = self.line(i);
                    if indexes && !self.lx.allowed(line, "index") {
                        rep.index_sites.push(Finding {
                            rule: "index",
                            line,
                            what: format!("slice/array indexing `{}[...]`", self.text(i - 1)),
                        });
                    }
                }
                _ => {}
            }
        }
    }

    /// L2: `HashMap`/`HashSet` iteration feeding ordered output.
    fn l2(&self, rep: &mut FileReport) {
        let names = self.hash_typed_names();
        if names.is_empty() {
            return;
        }
        for i in 0..self.n() {
            if self.is_masked(i) || self.kind(i) != Some(TokKind::Ident) {
                continue;
            }
            let t = self.text(i);
            // `name.iter()` / `self.name.keys()` …
            if HASH_ITER_METHODS.contains(&t)
                && i >= 2
                && self.kind(i - 1) == Some(TokKind::Punct(b'.'))
                && self.kind(i + 1) == Some(TokKind::Delim(b'('))
                && self.kind(i - 2) == Some(TokKind::Ident)
                && names.contains(self.text(i - 2))
            {
                self.flag_hash_iter(rep, i, self.text(i - 2), t);
            }
            // `for pat in [&][mut] name { … }` / `for pat in &self.name { … }`
            if t == "for" {
                if let Some(j) = self.find_in_clause(i) {
                    let mut j = j;
                    let mut steps = 0;
                    while steps < 12 {
                        match self.kind(j) {
                            Some(TokKind::Ident) => {
                                let name = self.text(j);
                                if names.contains(name)
                                    && self.kind(j + 1) != Some(TokKind::Delim(b'('))
                                {
                                    self.flag_hash_iter(rep, j, name, "for-in");
                                    break;
                                }
                            }
                            Some(TokKind::Delim(b'{')) | None => break,
                            _ => {}
                        }
                        j += 1;
                        steps += 1;
                    }
                }
            }
        }
    }

    /// Finds the token index right after the `in` of a `for` loop at `i`.
    fn find_in_clause(&self, i: usize) -> Option<usize> {
        let mut j = i + 1;
        let mut steps = 0;
        while steps < 25 {
            match self.kind(j) {
                Some(TokKind::Ident) if self.text(j) == "in" => return Some(j + 1),
                Some(TokKind::Delim(b'{')) | None => return None,
                _ => {}
            }
            j += 1;
            steps += 1;
        }
        None
    }

    /// Records a hash-iteration finding at token `i` unless an
    /// order-insensitive consumer follows within the next ~90 tokens (not
    /// crossing a `fn` boundary) or a `lint:allow(hash-iter)` covers the
    /// line.
    fn flag_hash_iter(&self, rep: &mut FileReport, i: usize, name: &str, via: &str) {
        let line = self.line(i);
        if self.lx.allowed(line, "hash-iter") {
            return;
        }
        for j in i..(i + 90).min(self.n()) {
            if self.kind(j) == Some(TokKind::Ident) {
                let t = self.text(j);
                if t == "fn" {
                    break;
                }
                if is_order_insensitive(t) {
                    return;
                }
            }
        }
        self.push_hard(
            rep,
            "hash-iter",
            line,
            format!(
                "iteration over hash collection `{name}` (via `{via}`) may leak \
                 nondeterministic order; sort the result, aggregate order-independently, \
                 or annotate `// lint:allow(hash-iter)`"
            ),
        );
    }

    /// Collects local/field/parameter names whose declared or constructed
    /// type is `HashMap`/`HashSet`.
    fn hash_typed_names(&self) -> BTreeSet<&'a str> {
        let mut names = BTreeSet::new();
        for i in 0..self.n() {
            if self.kind(i) != Some(TokKind::Ident) || KEYWORDS.contains(&self.text(i)) {
                continue;
            }
            match self.kind(i + 1) {
                // `name: RefCell<HashMap<…>>` — scan the type up to a
                // top-level delimiter, tracking angle-bracket depth.
                Some(TokKind::Punct(b':')) => {
                    let mut depth = 0i32;
                    let mut j = i + 2;
                    let mut steps = 0;
                    while steps < 40 {
                        match self.kind(j) {
                            Some(TokKind::Punct(b'<')) => depth += 1,
                            Some(TokKind::Punct(b'>')) => depth -= 1,
                            Some(TokKind::Punct(b',' | b';' | b'=')) | Some(TokKind::Delim(_))
                                if depth <= 0 =>
                            {
                                break
                            }
                            Some(TokKind::Ident)
                                if matches!(self.text(j), "HashMap" | "HashSet") =>
                            {
                                names.insert(self.text(i));
                                break;
                            }
                            None => break,
                            _ => {}
                        }
                        j += 1;
                        steps += 1;
                    }
                }
                // `name = HashMap::new()` / `= std::collections::HashSet::…`
                Some(TokKind::Punct(b'=')) => {
                    for j in i + 2..(i + 10).min(self.n()) {
                        match self.kind(j) {
                            Some(TokKind::Punct(b';')) => break,
                            Some(TokKind::Ident)
                                if matches!(self.text(j), "HashMap" | "HashSet") =>
                            {
                                names.insert(self.text(i));
                                break;
                            }
                            _ => {}
                        }
                    }
                }
                _ => {}
            }
        }
        names
    }

    /// L3: wall-clock time and float-equality determinism hazards.
    fn l3(&self, rep: &mut FileReport) {
        for i in 0..self.n() {
            if self.is_masked(i) {
                continue;
            }
            match self.kind(i) {
                Some(TokKind::Ident) => {
                    let line = self.line(i);
                    if self.is_wall_clock(i) && !self.lx.allowed(line, "time") {
                        self.push_hard(
                            rep,
                            "time",
                            line,
                            "wall-clock time in a query-execution module breaks reproducible \
                             runs; measure in the bench crate or annotate `// lint:allow(time)`"
                                .to_string(),
                        );
                    }
                }
                Some(TokKind::Op2([b'=', b'='])) | Some(TokKind::Op2([b'!', b'='])) => {
                    let float_adjacent = matches!(
                        self.kind(i + 1),
                        Some(TokKind::Num { float: true })
                    ) || (i > 0
                        && matches!(self.kind(i - 1), Some(TokKind::Num { float: true })));
                    let line = self.line(i);
                    if float_adjacent && !self.lx.allowed(line, "float-eq") {
                        self.push_hard(
                            rep,
                            "float-eq",
                            line,
                            "float `==`/`!=` comparison; use `total_cmp`, an epsilon, or \
                             annotate `// lint:allow(float-eq)`"
                                .to_string(),
                        );
                    }
                }
                _ => {}
            }
        }
    }

    /// True when the ident at `i` starts a wall-clock reference:
    /// `std::time`, `Instant`, or `SystemTime`.
    fn is_wall_clock(&self, i: usize) -> bool {
        let t = self.text(i);
        (t == "std"
            && self.kind(i + 1) == Some(TokKind::Op2([b':', b':']))
            && self.text(i + 2) == "time")
            || t == "Instant"
            || t == "SystemTime"
    }

    /// L5: no wall-clock time anywhere in `xtk-obs`.  Unlike L3 there is
    /// no `lint:allow` escape — the crate's contract (logical sequence
    /// numbers only, bit-identical traces) admits no exceptions.
    fn l5(&self, rep: &mut FileReport) {
        for i in 0..self.n() {
            if self.is_masked(i) || self.kind(i) != Some(TokKind::Ident) {
                continue;
            }
            if self.is_wall_clock(i) {
                self.push_hard(
                    rep,
                    "obs-time",
                    self.line(i),
                    "wall-clock time inside xtk-obs; the observability layer must \
                     order events by logical sequence numbers only"
                        .to_string(),
                );
            }
        }
    }

    /// L4: the crate root must carry `#![forbid(unsafe_code)]`.
    fn l4(&self, rep: &mut FileReport) {
        for i in 0..self.n() {
            if self.kind(i) == Some(TokKind::Punct(b'#'))
                && self.kind(i + 1) == Some(TokKind::Punct(b'!'))
                && self.kind(i + 2) == Some(TokKind::Delim(b'['))
                && self.text(i + 3) == "forbid"
                && self.kind(i + 4) == Some(TokKind::Delim(b'('))
                && self.text(i + 5) == "unsafe_code"
                && self.kind(i + 6) == Some(TokKind::Delim(b')'))
                && self.kind(i + 7) == Some(TokKind::Delim(b']'))
            {
                return;
            }
        }
        rep.hard.push(Finding {
            rule: "forbid-unsafe",
            line: 1,
            what: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

/// L9 — discarded `Result`s in the execution crates (`crates/core`,
/// `crates/index`):
///
/// * `let _ = fallible(...);` where the callee is a workspace function
///   whose return type mentions `Result` (param discards like
///   `let _ = unused_param;` don't flag — there is no call), and
/// * bare `.ok();` — converting a `Result` to an `Option` and
///   immediately dropping it is the token-level signature of a swallowed
///   error.
///
/// Suppress with `// lint:allow(L9)` only where the discard is the
/// documented contract.
pub fn l9(
    pf: &crate::parser::ParsedFile,
    result_fns: &BTreeSet<String>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    if !(pf.rel.starts_with("crates/core/src/") || pf.rel.starts_with("crates/index/src/")) {
        return out;
    }
    let n = pf.lx.tokens.len();
    for i in 0..n {
        if pf.is_masked(i) {
            continue;
        }
        // `let _ = <expr>;` with a Result-returning call in the expr.
        if pf.ident(i) == Some("let")
            && pf.ident(i + 1) == Some("_")
            && pf.kind(i + 2) == Some(TokKind::Punct(b'='))
        {
            let line = pf.line(i);
            if pf.lx.allowed(line, "L9") {
                continue;
            }
            let mut depth = 0i32;
            let mut j = i + 3;
            let mut callee: Option<String> = None;
            while j < n {
                match pf.kind(j) {
                    Some(TokKind::Delim(b'(' | b'[' | b'{')) => depth += 1,
                    Some(TokKind::Delim(b')' | b']' | b'}')) => depth -= 1,
                    Some(TokKind::Punct(b';')) if depth <= 0 => break,
                    Some(TokKind::Ident) if depth == 0 => {
                        let t = pf.text(j);
                        if pf.kind(j + 1) == Some(TokKind::Delim(b'(')) && result_fns.contains(t) {
                            callee = Some(t.to_string());
                        }
                    }
                    None => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(name) = callee {
                out.push(Finding {
                    rule: "L9",
                    line,
                    what: format!(
                        "`let _ = {name}(...)` discards a Result; handle the error, \
                         propagate with `?`, or annotate `// lint:allow(L9)`"
                    ),
                });
            }
        }
        // Bare `.ok();`
        if pf.kind(i) == Some(TokKind::Punct(b'.'))
            && pf.ident(i + 1) == Some("ok")
            && pf.kind(i + 2) == Some(TokKind::Delim(b'('))
            && pf.kind(i + 3) == Some(TokKind::Delim(b')'))
            && pf.kind(i + 4) == Some(TokKind::Punct(b';'))
        {
            let line = pf.line(i + 1);
            if pf.lx.allowed(line, "L9") {
                continue;
            }
            out.push(Finding {
                rule: "L9",
                line,
                what: "bare `.ok();` swallows a Result error; handle it, propagate \
                       with `?`, or annotate `// lint:allow(L9)`"
                    .to_string(),
            });
        }
    }
    out
}

/// Returns a per-token mask covering items under `#[cfg(test)]` /
/// `#[test]` attributes (the whole item: to the matching `}` or the
/// terminating `;`).  Shared with [`crate::parser`], which applies the
/// same exemption to the interprocedural passes.
pub fn test_mask(src: &str, lx: &Lexed) -> Vec<bool> {
    let n = lx.tokens.len();
    let mut masked = vec![false; n];
    let kind = |i: usize| lx.tokens.get(i).map(|t| t.kind);
    let mut i = 0;
    while i < n {
        if kind(i) != Some(TokKind::Punct(b'#')) || kind(i + 1) != Some(TokKind::Delim(b'[')) {
            i += 1;
            continue;
        }
        // Scan the attribute body to its closing `]`, collecting idents.
        let Some((attr_end, is_test)) = scan_attr(src, lx, i + 1) else {
            i += 1;
            continue;
        };
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes between `#[cfg(test)]` and the item.
        let mut j = attr_end + 1;
        while kind(j) == Some(TokKind::Punct(b'#')) && kind(j + 1) == Some(TokKind::Delim(b'[')) {
            match scan_attr(src, lx, j + 1) {
                Some((e, _)) => j = e + 1,
                None => break,
            }
        }
        // Mask the item: up to a top-level `;`, or the matching `}` of the
        // first `{`.
        let mut depth = 0i32;
        let mut end = j;
        while end < n {
            match kind(end) {
                Some(TokKind::Delim(b'{' | b'(' | b'[')) => depth += 1,
                Some(TokKind::Delim(b'}' | b')' | b']')) => {
                    depth -= 1;
                    if depth == 0 && kind(end) == Some(TokKind::Delim(b'}')) {
                        break;
                    }
                }
                Some(TokKind::Punct(b';')) if depth == 0 => break,
                None => break,
                _ => {}
            }
            end += 1;
        }
        for m in masked.iter_mut().take((end + 1).min(n)).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    masked
}

/// Scans an attribute starting at its `[` token; returns the index of the
/// closing `]` and whether the attribute gates on `test` (a bare
/// `#[test]`, or `cfg(...)` mentioning `test` without `not`).
fn scan_attr(src: &str, lx: &Lexed, open: usize) -> Option<(usize, bool)> {
    let n = lx.tokens.len();
    let mut depth = 0i32;
    let mut has_cfg = false;
    let mut has_test = false;
    let mut has_not = false;
    let mut j = open;
    while j < n {
        match lx.tokens.get(j).map(|t| t.kind) {
            Some(TokKind::Delim(b'[' | b'(' | b'{')) => depth += 1,
            Some(TokKind::Delim(b']')) => {
                depth -= 1;
                if depth == 0 {
                    let bare_test = has_test && !has_cfg && j == open + 2;
                    return Some((j, bare_test || (has_cfg && has_test && !has_not)));
                }
            }
            Some(TokKind::Delim(b')' | b'}')) => depth -= 1,
            Some(TokKind::Ident) => match lx.text(src, j) {
                "cfg" => has_cfg = true,
                "test" => has_test = true,
                "not" => has_not = true,
                _ => {}
            },
            None => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: FileClass =
        FileClass { lib_code: true, exec_scope: false, crate_root: false, obs_scope: false };
    const EXEC: FileClass =
        FileClass { lib_code: true, exec_scope: true, crate_root: false, obs_scope: false };
    const ROOT: FileClass =
        FileClass { lib_code: true, exec_scope: false, crate_root: true, obs_scope: false };
    const OBS: FileClass =
        FileClass { lib_code: true, exec_scope: false, crate_root: false, obs_scope: true };

    #[test]
    fn classify_paths() {
        assert!(classify("crates/core/src/topk.rs").lib_code);
        assert!(classify("crates/core/src/topk.rs").exec_scope);
        assert!(!classify("crates/xml/src/parser.rs").exec_scope);
        assert!(classify("crates/xml/src/lib.rs").crate_root);
        assert!(classify("src/lib.rs").crate_root);
        assert!(!classify("crates/core/tests/conformance.rs").lib_code);
        assert!(!classify("tests/integration.rs").lib_code);
        assert!(!classify("src/bin/tool.rs").lib_code);
        assert!(!classify("examples/demo.rs").lib_code);
        assert!(!classify("crates/lint/fixtures/bad_panics.rs").lib_code);
        assert!(classify("crates/obs/src/trace.rs").obs_scope);
        assert!(!classify("crates/obs/src/trace.rs").exec_scope);
        assert!(!classify("crates/core/src/topk.rs").obs_scope);
        assert!(!classify("crates/obs/tests/api.rs").obs_scope);
    }

    #[test]
    fn l1_counts_panics_and_indexing() {
        let src = r#"
            pub fn f(v: &[u32], o: Option<u32>) -> u32 {
                let a = o.unwrap();
                let b = o.expect("x");
                if v.is_empty() { panic!("empty"); }
                let c = v[0];
                a + b + c
            }
        "#;
        let rep = analyze(src, &LIB);
        assert_eq!(rep.l1_counts(), (3, 1), "{:?} {:?}", rep.panic_sites, rep.index_sites);
    }

    #[test]
    fn l1_skips_test_items_and_lookalikes() {
        let src = r#"
            /// Docs may say `x.unwrap()` freely.
            pub fn f(v: &[u32; 4]) -> Option<u32> {
                let w = vec![1, 2];
                let _ = w.first();
                v.get(0).copied() // get, not indexing
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    let v = [1u32, 2, 3];
                    assert_eq!(v[0], super::f(&[1, 2, 3, 4]).unwrap());
                }
            }
        "#;
        let rep = analyze(src, &LIB);
        assert_eq!(rep.l1_counts(), (0, 0), "{:?} {:?}", rep.panic_sites, rep.index_sites);
    }

    #[test]
    fn l1_allow_comments() {
        let src = "pub fn f(v: &[u32]) -> u32 {\n    // lint:allow(index) bounds checked above\n    v[0]\n}\n";
        assert_eq!(analyze(src, &LIB).l1_counts(), (0, 0));
        let src2 = "pub fn f(v: &[u32]) -> u32 { v[0] }\n";
        assert_eq!(analyze(src2, &LIB).l1_counts(), (0, 1));
    }

    #[test]
    fn l1_unwrap_or_is_not_unwrap() {
        let src = "pub fn f(o: Option<u32>) -> u32 { o.unwrap_or(0) }";
        assert_eq!(analyze(src, &LIB).l1_counts(), (0, 0));
    }

    #[test]
    fn l2_flags_unsorted_hash_iteration() {
        let src = r#"
            use std::collections::HashMap;
            pub fn leak(m: &HashMap<u32, u32>) -> Vec<u32> {
                let mut out = Vec::new();
                for (kk, _) in m.iter() { out.push(*kk); }
                out
            }
        "#;
        let rep = analyze(src, &EXEC);
        assert_eq!(rep.hard.len(), 1, "{:?}", rep.hard);
        assert_eq!(rep.hard.first().map(|f| f.rule), Some("hash-iter"));
    }

    #[test]
    fn l2_sorted_or_aggregated_is_fine() {
        let src = r#"
            use std::collections::HashMap;
            pub fn ordered(m: &HashMap<u32, u32>) -> Vec<u32> {
                let mut ks: Vec<u32> = m.keys().copied().collect();
                ks.sort_unstable();
                ks
            }
            pub fn total(m: &HashMap<u32, u32>) -> u64 {
                m.values().map(|&v| v as u64).sum()
            }
        "#;
        let rep = analyze(src, &EXEC);
        assert!(rep.hard.is_empty(), "{:?}", rep.hard);
    }

    #[test]
    fn l2_vec_iteration_untouched() {
        let src = "pub fn f(v: &Vec<u32>) -> Vec<u32> { v.iter().copied().collect() }";
        assert!(analyze(src, &EXEC).hard.is_empty());
    }

    #[test]
    fn l3_time_and_float_eq() {
        let src = r#"
            pub fn t() -> u64 { let _x = std::time::Instant::now(); 0 }
            pub fn eq(a: f32) -> bool { a == 0.5 }
        "#;
        let rep = analyze(src, &EXEC);
        let rules: Vec<&str> = rep.hard.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"time"), "{rules:?}");
        assert!(rules.contains(&"float-eq"), "{rules:?}");
    }

    #[test]
    fn l3_int_eq_is_fine() {
        let src = "pub fn f(a: u32) -> bool { a == 5 && 1.5 < 2.0 }";
        assert!(analyze(src, &EXEC).hard.is_empty());
    }

    #[test]
    fn l5_flags_wall_clock_in_obs() {
        let src = r#"
            pub fn stamp() -> u64 { let _t = std::time::SystemTime::now(); 0 }
        "#;
        let rep = analyze(src, &OBS);
        assert_eq!(rep.hard.first().map(|f| f.rule), Some("obs-time"), "{:?}", rep.hard);
    }

    #[test]
    fn l5_has_no_allow_escape_but_skips_tests() {
        let src = "pub fn t() -> u64 { // lint:allow(time)\n    let _x = Instant::now(); 0 }\n";
        let rep = analyze(src, &OBS);
        assert_eq!(rep.hard.first().map(|f| f.rule), Some("obs-time"), "{:?}", rep.hard);
        let test_only = "#[cfg(test)]\nmod tests { fn t() { let _ = Instant::now(); } }\n";
        assert!(analyze(test_only, &OBS).hard.is_empty());
        let clean = "pub fn seq(n: u64) -> u64 { n + 1 }\n";
        assert!(analyze(clean, &OBS).hard.is_empty());
    }

    #[test]
    fn l4_forbid_unsafe() {
        let ok = "#![forbid(unsafe_code)]\npub mod x {}\n";
        assert!(analyze(ok, &ROOT).hard.is_empty());
        let bad = "//! docs\npub fn f() {}\n";
        let rep = analyze(bad, &ROOT);
        assert_eq!(rep.hard.first().map(|f| f.rule), Some("forbid-unsafe"));
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\npub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
        assert_eq!(analyze(src, &LIB).l1_counts(), (1, 0));
    }

    fn l9_of(rel: &str, src: &str, result_fns: &[&str]) -> Vec<Finding> {
        let pf = crate::parser::parse(rel, src.to_string());
        let set: BTreeSet<String> = result_fns.iter().map(|s| s.to_string()).collect();
        l9(&pf, &set)
    }

    #[test]
    fn l9_flags_discarded_result_call() {
        let src = "pub fn f() { let _ = flush(); }\n";
        let out = l9_of("crates/core/src/batch.rs", src, &["flush"]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out.first().is_some_and(|f| f.what.contains("flush")));
    }

    #[test]
    fn l9_ignores_non_result_and_param_discards() {
        // Param discard: no call at all.
        let a = l9_of("crates/core/src/batch.rs", "pub fn f(x: u32) { let _ = x; }\n", &["flush"]);
        assert!(a.is_empty(), "{a:?}");
        // Call to a fn that does not return Result.
        let b = l9_of("crates/core/src/batch.rs", "pub fn f() { let _ = tuple_fn(); }\n", &["flush"]);
        assert!(b.is_empty(), "{b:?}");
        // Out of scope: xml crate.
        let c = l9_of("crates/xml/src/pool.rs", "pub fn f() { let _ = flush(); }\n", &["flush"]);
        assert!(c.is_empty(), "{c:?}");
    }

    #[test]
    fn l9_flags_bare_ok_discard_but_not_ok_chains() {
        let bad = "pub fn f(r: Result<u32, E>) { r.send().ok(); }\n";
        let out = l9_of("crates/index/src/cache.rs", bad, &[]);
        assert_eq!(out.len(), 1, "{out:?}");
        // `.ok()` feeding a consumer is not a silent discard.
        let good = "pub fn f(r: Result<u32, E>) -> Option<u32> { r.parse().ok() }\n";
        assert!(l9_of("crates/index/src/cache.rs", good, &[]).is_empty());
    }

    #[test]
    fn l9_allow_and_test_mask() {
        let allowed =
            "pub fn f() {\n    // lint:allow(L9) best-effort cleanup\n    let _ = flush();\n}\n";
        assert!(l9_of("crates/core/src/batch.rs", allowed, &["flush"]).is_empty());
        let test_only =
            "#[cfg(test)]\nmod tests { fn t() { let _ = flush(); std::fs::remove_file(\"x\").ok(); } }\n";
        assert!(l9_of("crates/core/src/batch.rs", test_only, &["flush"]).is_empty());
    }
}
