//! A lightweight Rust parser layered on [`crate::lexer`].
//!
//! This is deliberately *not* an AST: it recovers exactly the structure
//! the interprocedural passes (L6–L8) need and nothing more —
//!
//! * items: `impl`/`trait` regions with their owning type name, and every
//!   `fn` with its name, visibility, parameter types, return-type idents
//!   and body token range;
//! * per-token derived maps: delimiter matching, loop-nesting depth, the
//!   innermost enclosing block;
//! * per-function **events**: call expressions (with receiver/path hints
//!   for resolution), panic sites, allocation sites, and lock
//!   acquisitions with their held region.
//!
//! Like the lexer it is total: any token stream produces a (possibly
//! empty) parse, so a broken file degrades analysis instead of aborting
//! it.  Resolution of calls to workspace functions happens in
//! [`crate::graph`]; this module only records what each site looks like.

use crate::lexer::{lex, Lexed, TokKind};
use crate::rules::test_mask;
use std::collections::BTreeMap;

/// Maps a repo-relative path to the crate the interprocedural passes
/// analyze (`crates/{core,index,xml,obs}` only).
pub fn crate_of(rel: &str) -> Option<&'static str> {
    for (prefix, name) in [
        ("crates/core/src/", "xtk_core"),
        ("crates/index/src/", "xtk_index"),
        ("crates/xml/src/", "xtk_xml"),
        ("crates/obs/src/", "xtk_obs"),
    ] {
        if rel.starts_with(prefix) {
            return Some(name);
        }
    }
    None
}

/// One parsed function.
#[derive(Debug)]
pub struct FnDef {
    /// Bare name (`run`, `execute`).
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any (`Engine`).
    pub owner: Option<String>,
    /// Trait being implemented, for `impl Trait for Type` (`Executor`).
    pub trait_name: Option<String>,
    pub is_pub: bool,
    pub line: u32,
    /// Idents of the return type, in order (`["io", "Result", "QueryResponse"]`).
    pub ret: Vec<String>,
    /// Parameter and `let` binding types: name → type idents, last
    /// binding wins.
    pub locals: BTreeMap<String, Vec<String>>,
    /// Token range `(open_brace, close_brace)` of the body.
    pub body: Option<(usize, usize)>,
    /// Inside `#[cfg(test)]` / `#[test]` — excluded from every pass.
    pub in_test: bool,
}

/// What a panic site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `panic!` / `todo!` / `unimplemented!` / `unreachable!`.
    Macro,
    /// `.unwrap()` / `.expect(...)`.
    Unwrap,
    /// Slice/array indexing `x[i]`.
    Index,
    /// `/` or `%` with a non-literal divisor, in a designated hot module.
    Div,
}

/// One body event, in token order.
#[derive(Debug)]
pub enum Event {
    /// A call expression.
    Call {
        /// Callee name (`run_in_memory`, `execute`).
        name: String,
        /// For method calls: the last receiver ident (`self`, `cache`).
        /// `None` with `method: true` means a chained call (`...).find(`)
        /// whose receiver has no simple name.
        recv: Option<String>,
        /// For path calls `Qual::name(...)`: the qualifier ident.
        qual: Option<String>,
        /// True for `.name(...)` method syntax.
        method: bool,
        /// Token index of the callee ident.
        pos: usize,
        line: u32,
    },
    /// A remaining (non-allowed) panic site.
    Panic { kind: PanicKind, line: u32 },
    /// An allocation site.
    Alloc {
        what: &'static str,
        line: u32,
        /// Loop nesting depth at the site (0 = straight-line code).
        depth: u32,
        /// `lint:allow(L8, …)` covers the line; `reason` is its text.
        allowed: bool,
        reason: Option<String>,
    },
    /// A lock acquisition with its held region `(pos, end]` in tokens.
    Acquire { lock: String, line: u32, pos: usize, end: usize },
}

/// One parsed source file plus the derived per-token maps.
pub struct ParsedFile {
    pub rel: String,
    pub krate: Option<&'static str>,
    pub src: String,
    pub lx: Lexed,
    pub fns: Vec<FnDef>,
    /// Declared lock fields/params: name → inner type (`shards` → `Shard`).
    pub lock_decls: BTreeMap<String, String>,
    /// All `name: Type` declarations seen: name → type idents.
    pub field_types: BTreeMap<String, Vec<String>>,
    /// Loop nesting depth per token.
    pub loop_depth: Vec<u32>,
    /// Matching close index per open-delimiter token.
    pub close: Vec<usize>,
    /// Close index of the innermost enclosing `{ }` per token.
    pub encl_block: Vec<usize>,
    masked: Vec<bool>,
}

const NO_MATCH: usize = usize::MAX;

const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "union", "unsafe", "use", "where", "while", "yield",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Std generic containers that make a poor lock identity: two
/// `Mutex<BTreeMap<…>>` fields are *different* locks.
fn is_std_container(s: &str) -> bool {
    matches!(
        s,
        "BTreeMap" | "BTreeSet" | "HashMap" | "HashSet" | "Vec" | "VecDeque" | "String"
            | "Option" | "Box" | "Arc"
    )
}

impl ParsedFile {
    pub fn kind(&self, i: usize) -> Option<TokKind> {
        self.lx.tokens.get(i).map(|t| t.kind)
    }

    pub fn text(&self, i: usize) -> &str {
        self.lx.text(&self.src, i)
    }

    pub fn line(&self, i: usize) -> u32 {
        self.lx.tokens.get(i).map(|t| t.line).unwrap_or(0)
    }

    /// Ident text at `i`, or `None` for any other token kind.
    pub fn ident(&self, i: usize) -> Option<&str> {
        match self.kind(i) {
            Some(TokKind::Ident) => Some(self.text(i)),
            _ => None,
        }
    }

    /// True when token `i` is inside a `#[cfg(test)]` / `#[test]` item.
    pub fn is_masked(&self, i: usize) -> bool {
        self.masked.get(i).copied().unwrap_or(false)
    }
}

/// Parses one file: items, signatures, declarations and derived maps.
/// Events are built separately by [`events`] once workspace-global lock
/// tables exist.
pub fn parse(rel: &str, src: String) -> ParsedFile {
    let lx = lex(&src);
    let masked = test_mask(&src, &lx);
    let n = lx.tokens.len();
    let mut pf = ParsedFile {
        rel: rel.to_string(),
        krate: crate_of(rel),
        close: vec![NO_MATCH; n],
        encl_block: vec![NO_MATCH; n],
        loop_depth: vec![0; n],
        src,
        lx,
        fns: Vec::new(),
        lock_decls: BTreeMap::new(),
        field_types: BTreeMap::new(),
        masked,
    };
    build_maps(&mut pf);
    let owners = owner_regions(&pf);
    collect_decls(&mut pf);
    collect_fns(&mut pf, &owners);
    pf
}

/// Fills `close`, `encl_block` and `loop_depth` in one pass.
fn build_maps(pf: &mut ParsedFile) {
    let n = pf.lx.tokens.len();
    // Delimiter matching.
    let mut stack: Vec<usize> = Vec::new();
    for i in 0..n {
        match pf.kind(i) {
            Some(TokKind::Delim(b'(' | b'[' | b'{')) => stack.push(i),
            Some(TokKind::Delim(b')' | b']' | b'}')) => {
                if let Some(open) = stack.pop() {
                    if let Some(slot) = pf.close.get_mut(open) {
                        *slot = i;
                    }
                }
            }
            _ => {}
        }
    }
    // Enclosing block + loop depth: a `for`/`while`/`loop` ident arms the
    // next `{` at the same or deeper position to raise the loop depth.
    let mut blocks: Vec<(usize, bool)> = Vec::new(); // (close_idx, is_loop)
    let mut depth = 0u32;
    let mut armed = false;
    for i in 0..n {
        match pf.kind(i) {
            Some(TokKind::Ident) => {
                if matches!(pf.text(i), "for" | "while" | "loop") {
                    armed = true;
                }
            }
            Some(TokKind::Delim(b'{')) => {
                let close = pf.close.get(i).copied().unwrap_or(NO_MATCH);
                blocks.push((close, armed));
                if armed {
                    depth += 1;
                }
                armed = false;
            }
            Some(TokKind::Delim(b'}')) => {
                if let Some((_, was_loop)) = blocks.pop() {
                    if was_loop {
                        depth = depth.saturating_sub(1);
                    }
                }
            }
            Some(TokKind::Punct(b';')) => armed = false,
            _ => {}
        }
        if let Some(slot) = pf.loop_depth.get_mut(i) {
            *slot = depth;
        }
        if let Some(slot) = pf.encl_block.get_mut(i) {
            *slot = blocks.last().map(|&(c, _)| c).unwrap_or(NO_MATCH);
        }
    }
}

/// An `impl`/`trait` body region with its owning type name.
struct OwnerRegion {
    open: usize,
    close: usize,
    owner: String,
    trait_name: Option<String>,
}

/// Finds every `impl`/`trait` body and the type it attaches functions to.
fn owner_regions(pf: &ParsedFile) -> Vec<OwnerRegion> {
    let n = pf.lx.tokens.len();
    let mut out = Vec::new();
    for i in 0..n {
        let head = match pf.ident(i) {
            Some("impl") => "impl",
            Some("trait") => "trait",
            _ => continue,
        };
        // `trait` must be a declaration, not `dyn Trait` / `impl Trait`
        // in type position: require the previous token to not be `dyn`.
        if head == "trait" && pf.ident(i + 1).is_none() {
            continue;
        }
        // Scan the header to the body `{`, tracking angle depth.
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut after_for: Vec<usize> = Vec::new(); // idents at angle depth 0 after `for`
        let mut base: Vec<usize> = Vec::new(); // idents at angle depth 0
        let mut saw_for = false;
        let mut open = NO_MATCH;
        let mut steps = 0;
        while steps < 300 {
            match pf.kind(j) {
                Some(TokKind::Punct(b'<')) => angle += 1,
                Some(TokKind::Punct(b'>')) => angle -= 1,
                Some(TokKind::Delim(b'{')) if angle <= 0 => {
                    open = j;
                    break;
                }
                Some(TokKind::Punct(b';')) | None => break,
                Some(TokKind::Ident) if angle <= 0 => match pf.text(j) {
                    "for" => saw_for = true,
                    "where" => break,
                    t if is_keyword(t) => {}
                    _ => {
                        if saw_for {
                            after_for.push(j);
                        } else {
                            base.push(j);
                        }
                    }
                },
                _ => {}
            }
            j += 1;
            steps += 1;
        }
        // The where clause may still precede the `{`.
        if open == NO_MATCH {
            let mut k = j;
            let mut steps = 0;
            while steps < 300 {
                match pf.kind(k) {
                    Some(TokKind::Delim(b'{')) => {
                        open = k;
                        break;
                    }
                    Some(TokKind::Punct(b';')) | None => break,
                    _ => {}
                }
                k += 1;
                steps += 1;
            }
        }
        let Some(close) = (open != NO_MATCH)
            .then(|| pf.close.get(open).copied().unwrap_or(NO_MATCH))
            .filter(|&c| c != NO_MATCH)
        else {
            continue;
        };
        // `impl Trait for Type` — the owner is the type after `for`, and
        // the last base path segment names the trait.  Otherwise the last
        // base ident is the owner.
        let (owner_idx, trait_idx) = if head == "impl" && saw_for {
            (after_for.last().copied(), base.last().copied())
        } else {
            (base.last().copied(), None)
        };
        // For `trait Foo`, the *first* ident is the name (supertraits
        // follow a `:`), so prefer it.
        let owner_idx = if head == "trait" { base.first().copied() } else { owner_idx };
        let Some(owner_idx) = owner_idx else { continue };
        out.push(OwnerRegion {
            open,
            close,
            owner: pf.text(owner_idx).to_string(),
            trait_name: trait_idx.map(|t| pf.text(t).to_string()),
        });
    }
    out
}

/// Harvests `name: Type` declarations file-wide: the lock table (types
/// containing `Mutex<…>`/`RwLock<…>`) and the broader field-type map used
/// for receiver resolution.
fn collect_decls(pf: &mut ParsedFile) {
    let n = pf.lx.tokens.len();
    let mut lock_decls = BTreeMap::new();
    let mut field_types: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for i in 0..n {
        let Some(name) = pf.ident(i) else { continue };
        if is_keyword(name) || pf.kind(i + 1) != Some(TokKind::Punct(b':')) {
            continue;
        }
        let mut idents: Vec<String> = Vec::new();
        let mut lock_inner: Option<String> = None;
        let mut angle = 0i32;
        let mut j = i + 2;
        let mut steps = 0;
        while steps < 40 {
            match pf.kind(j) {
                Some(TokKind::Punct(b'<')) => angle += 1,
                Some(TokKind::Punct(b'>')) => angle -= 1,
                Some(TokKind::Punct(b',' | b';' | b'=')) | Some(TokKind::Delim(_))
                    if angle <= 0 =>
                {
                    break
                }
                Some(TokKind::Ident) => {
                    let t = pf.text(j);
                    if !is_keyword(t) {
                        // A lock type in *type position* is `Mutex<Inner>` —
                        // the `<` right after distinguishes it from the
                        // constructor call `Mutex::new(…)`.
                        if matches!(t, "Mutex" | "RwLock")
                            && pf.kind(j + 1) == Some(TokKind::Punct(b'<'))
                        {
                            if let Some(inner) = pf.ident(j + 2) {
                                lock_inner = Some(inner.to_string());
                            }
                        }
                        idents.push(t.to_string());
                    }
                }
                None => break,
                _ => {}
            }
            j += 1;
            steps += 1;
        }
        if let Some(inner) = lock_inner {
            // A single-char inner is a type parameter (`fn lock<T>(m:
            // &Mutex<T>)`): the helper itself acquires nothing concrete —
            // call sites resolve the real lock through the arguments.  A
            // std-container inner (`Mutex<BTreeMap<…>>`) would alias every
            // such field to one identity, so use the field name instead.
            if inner.chars().count() > 1 {
                let identity = if is_std_container(&inner) { name.to_string() } else { inner };
                lock_decls.entry(name.to_string()).or_insert(identity);
            }
        }
        if !idents.is_empty() {
            field_types.entry(name.to_string()).or_insert(idents);
        }
    }
    pf.lock_decls = lock_decls;
    pf.field_types = field_types;
}

/// Collects every `fn` (including nested and trait-declared ones).
fn collect_fns(pf: &mut ParsedFile, owners: &[OwnerRegion]) {
    let n = pf.lx.tokens.len();
    let mut fns = Vec::new();
    for i in 0..n {
        if pf.ident(i) != Some("fn") {
            continue;
        }
        let Some(name) = pf.ident(i + 1).filter(|t| !is_keyword(t)) else { continue };
        let name = name.to_string();
        // Innermost enclosing impl/trait region.
        let region = owners
            .iter()
            .filter(|r| r.open < i && i < r.close)
            .min_by_key(|r| r.close - r.open);
        let mut j = i + 2;
        // Generics.
        if pf.kind(j) == Some(TokKind::Punct(b'<')) {
            let mut angle = 0i32;
            let mut steps = 0;
            while steps < 200 {
                match pf.kind(j) {
                    Some(TokKind::Punct(b'<')) => angle += 1,
                    Some(TokKind::Punct(b'>')) => {
                        angle -= 1;
                        if angle == 0 {
                            j += 1;
                            break;
                        }
                    }
                    None => break,
                    _ => {}
                }
                j += 1;
                steps += 1;
            }
        }
        if pf.kind(j) != Some(TokKind::Delim(b'(')) {
            continue;
        }
        let params_close = pf.close.get(j).copied().unwrap_or(NO_MATCH);
        if params_close == NO_MATCH {
            continue;
        }
        let mut locals = BTreeMap::new();
        parse_params(pf, j + 1, params_close, &mut locals);
        // Return type.
        let mut ret: Vec<String> = Vec::new();
        let mut k = params_close + 1;
        if pf.kind(k) == Some(TokKind::Op2([b'-', b'>'])) {
            k += 1;
            let mut depth = 0i32;
            let mut steps = 0;
            while steps < 120 {
                match pf.kind(k) {
                    Some(TokKind::Delim(b'{')) if depth == 0 => break,
                    Some(TokKind::Punct(b';')) if depth == 0 => break,
                    Some(TokKind::Delim(b'(' | b'[')) => depth += 1,
                    Some(TokKind::Delim(b')' | b']')) => depth -= 1,
                    Some(TokKind::Ident) => {
                        let t = pf.text(k);
                        if t == "where" && depth == 0 {
                            break;
                        }
                        if !is_keyword(t) {
                            ret.push(t.to_string());
                        }
                    }
                    None => break,
                    _ => {}
                }
                k += 1;
                steps += 1;
            }
        }
        // Body: the next `{` before a `;` (skipping the where clause).
        let mut body = None;
        let mut steps = 0;
        while steps < 200 {
            match pf.kind(k) {
                Some(TokKind::Delim(b'{')) => {
                    let close = pf.close.get(k).copied().unwrap_or(NO_MATCH);
                    if close != NO_MATCH {
                        body = Some((k, close));
                    }
                    break;
                }
                Some(TokKind::Punct(b';')) | None => break,
                _ => {}
            }
            k += 1;
            steps += 1;
        }
        if let Some((open, close)) = body {
            collect_lets(pf, open + 1, close, &mut locals);
        }
        fns.push(FnDef {
            is_pub: is_pub_before(pf, i),
            line: pf.line(i + 1),
            owner: region.map(|r| r.owner.clone()),
            trait_name: region.and_then(|r| r.trait_name.clone()),
            name,
            ret,
            locals,
            body,
            in_test: pf.is_masked(i),
        });
    }
    pf.fns = fns;
}

/// `pub` (possibly `pub(crate)`) looking back from the `fn` keyword over
/// `const`/`async`/`unsafe`/`extern "abi"` qualifiers.
fn is_pub_before(pf: &ParsedFile, fn_idx: usize) -> bool {
    let mut i = fn_idx;
    let mut steps = 0;
    while i > 0 && steps < 8 {
        i -= 1;
        steps += 1;
        match pf.kind(i) {
            Some(TokKind::Ident) => match pf.text(i) {
                "pub" => return true,
                "const" | "async" | "unsafe" | "extern" | "crate" | "super" | "in" | "self" => {}
                _ => return false,
            },
            Some(TokKind::Delim(b'(' | b')')) | Some(TokKind::StrLike) => {}
            _ => return false,
        }
    }
    false
}

/// Parses `name: Type` parameters between `open..close` into `locals`.
fn parse_params(pf: &ParsedFile, open: usize, close: usize, locals: &mut BTreeMap<String, Vec<String>>) {
    let mut i = open;
    while i < close {
        // One parameter: up to the next top-level comma.
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut colon = None;
        let mut end = close;
        let mut j = i;
        while j < close {
            match pf.kind(j) {
                Some(TokKind::Delim(b'(' | b'[' | b'{')) => depth += 1,
                Some(TokKind::Delim(b')' | b']' | b'}')) => depth -= 1,
                Some(TokKind::Punct(b'<')) => angle += 1,
                Some(TokKind::Punct(b'>')) => angle -= 1,
                Some(TokKind::Punct(b':')) if depth == 0 && angle == 0 && colon.is_none() => {
                    colon = Some(j);
                }
                Some(TokKind::Punct(b',')) if depth == 0 && angle <= 0 => {
                    end = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        if let Some(c) = colon {
            let name = (i..c).rev().find_map(|k| pf.ident(k).filter(|t| !is_keyword(t)));
            if let Some(name) = name {
                let tys: Vec<String> = (c + 1..end)
                    .filter_map(|k| pf.ident(k).filter(|t| !is_keyword(t)).map(str::to_string))
                    .collect();
                if !tys.is_empty() {
                    locals.insert(name.to_string(), tys);
                }
            }
        }
        i = end + 1;
    }
}

/// Records `let [mut] name: Type = …` and `let [mut] name = Type::…`
/// bindings inside a body.
fn collect_lets(pf: &ParsedFile, open: usize, close: usize, locals: &mut BTreeMap<String, Vec<String>>) {
    for i in open..close {
        if pf.ident(i) != Some("let") {
            continue;
        }
        let mut j = i + 1;
        if pf.ident(j) == Some("mut") {
            j += 1;
        }
        let Some(name) = pf.ident(j).filter(|t| !is_keyword(t)) else { continue };
        match pf.kind(j + 1) {
            Some(TokKind::Punct(b':')) => {
                let mut tys = Vec::new();
                let mut k = j + 2;
                let mut angle = 0i32;
                let mut steps = 0;
                while steps < 40 {
                    match pf.kind(k) {
                        Some(TokKind::Punct(b'<')) => angle += 1,
                        Some(TokKind::Punct(b'>')) => angle -= 1,
                        Some(TokKind::Punct(b'=' | b';')) if angle <= 0 => break,
                        Some(TokKind::Ident) => {
                            let t = pf.text(k);
                            if !is_keyword(t) {
                                tys.push(t.to_string());
                            }
                        }
                        None => break,
                        _ => {}
                    }
                    k += 1;
                    steps += 1;
                }
                if !tys.is_empty() {
                    locals.insert(name.to_string(), tys);
                }
            }
            Some(TokKind::Punct(b'=')) => {
                // `let x = Type::new(…)` — a constructor path names the type.
                if let Some(t) = pf.ident(j + 2).filter(|t| !is_keyword(t)) {
                    if pf.kind(j + 3) == Some(TokKind::Op2([b':', b':'])) {
                        locals.insert(name.to_string(), vec![t.to_string()]);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Workspace-global context needed to classify body events.
pub struct EventCtx<'a> {
    /// Lock name → inner type, merged across all files.
    pub lock_decls: &'a BTreeMap<String, String>,
    /// Guard-returning fn name → inner type (`lock_shard` → `Shard`).
    pub guard_fns: &'a BTreeMap<String, String>,
    /// This file is a designated hot module (division counts as a panic
    /// site).
    pub hot: bool,
}

/// Builds the event stream for function `fi` of `pf`, skipping any nested
/// function bodies (they get their own event streams).
pub fn events(pf: &ParsedFile, fi: usize, ctx: &EventCtx) -> Vec<Event> {
    let Some(f) = pf.fns.get(fi) else { return Vec::new() };
    let Some((open, close)) = f.body else { return Vec::new() };
    // Nested fn body ranges to skip.
    let nested: Vec<(usize, usize)> = pf
        .fns
        .iter()
        .filter_map(|g| g.body)
        .filter(|&(o, c)| o > open && c < close)
        .collect();
    let base_depth = pf.loop_depth.get(open).copied().unwrap_or(0);
    let mut out = Vec::new();
    let mut i = open + 1;
    while i < close {
        if let Some(&(_, c)) = nested.iter().find(|&&(o, c)| o <= i && i <= c) {
            i = c + 1;
            continue;
        }
        if pf.is_masked(i) {
            i += 1;
            continue;
        }
        scan_token(pf, f, ctx, base_depth, i, close, &mut out);
        i += 1;
    }
    out
}

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];
const ALLOC_MACROS: &[(&str, &str)] = &[("format", "format!"), ("vec", "vec![…]")];

fn scan_token(
    pf: &ParsedFile,
    f: &FnDef,
    ctx: &EventCtx,
    base_depth: u32,
    i: usize,
    body_close: usize,
    out: &mut Vec<Event>,
) {
    let line = pf.line(i);
    let depth = pf.loop_depth.get(i).copied().unwrap_or(0).saturating_sub(base_depth);
    match pf.kind(i) {
        Some(TokKind::Ident) => {
            let t = pf.text(i);
            if is_keyword(t) {
                return;
            }
            // Macros: panic family and allocating family.
            if pf.kind(i + 1) == Some(TokKind::Punct(b'!')) {
                if PANIC_MACROS.contains(&t) && !pf.lx.allowed(line, "panic") {
                    out.push(Event::Panic { kind: PanicKind::Macro, line });
                }
                if let Some(&(_, what)) = ALLOC_MACROS.iter().find(|&&(m, _)| m == t) {
                    let allow = pf.lx.allow_for(line, "L8");
                    out.push(Event::Alloc {
                        what,
                        line,
                        depth,
                        allowed: allow.is_some(),
                        reason: allow.and_then(|a| a.reason.clone()),
                    });
                }
                return;
            }
            let is_method = i > 0 && pf.kind(i - 1) == Some(TokKind::Punct(b'.'));
            let called = pf.kind(i + 1) == Some(TokKind::Delim(b'('))
                || (pf.kind(i + 1) == Some(TokKind::Op2([b':', b':']))
                    && is_method
                    && pf.kind(i + 2) == Some(TokKind::Punct(b'<')));
            if !called {
                return;
            }
            if is_method {
                if (t == "unwrap" || t == "expect") && !pf.lx.allowed(line, "panic") {
                    out.push(Event::Panic { kind: PanicKind::Unwrap, line });
                    return;
                }
                if t == "to_vec" || t == "collect" {
                    let allow = pf.lx.allow_for(line, "L8");
                    out.push(Event::Alloc {
                        what: if t == "to_vec" { ".to_vec()" } else { ".collect()" },
                        line,
                        depth,
                        allowed: allow.is_some(),
                        reason: allow.and_then(|a| a.reason.clone()),
                    });
                    return;
                }
                let recv = pf.ident(i.saturating_sub(2)).map(str::to_string);
                // A lock acquisition: `.lock()` / `.read()` / `.write()`
                // on a receiver whose declared type is a lock.
                if matches!(t, "lock" | "read" | "write") {
                    if let Some(inner) = recv.as_deref().and_then(|r| lock_inner(pf, f, ctx, r)) {
                        let end = held_region_end(pf, i, body_close);
                        out.push(Event::Acquire { lock: inner, line, pos: i, end });
                        return;
                    }
                }
                out.push(Event::Call {
                    name: t.to_string(),
                    recv,
                    qual: None,
                    method: true,
                    pos: i,
                    line,
                });
            } else {
                // Skip definitions (`fn name(`) and struct-ish heads.
                if pf.ident(i.saturating_sub(1)) == Some("fn") {
                    return;
                }
                let qual = (i >= 2
                    && pf.kind(i - 1) == Some(TokKind::Op2([b':', b':'])))
                .then(|| pf.ident(i.saturating_sub(2)))
                .flatten()
                .map(str::to_string);
                // Allocation constructors: `Vec::new()`.
                if t == "new" && qual.as_deref() == Some("Vec") {
                    let allow = pf.lx.allow_for(line, "L8");
                    out.push(Event::Alloc {
                        what: "Vec::new()",
                        line,
                        depth,
                        allowed: allow.is_some(),
                        reason: allow.and_then(|a| a.reason.clone()),
                    });
                    return;
                }
                // Guard-returning helper: acquiring call.
                if let Some(inner) = guard_call_inner(pf, f, ctx, i, t) {
                    let end = held_region_end(pf, i, body_close);
                    out.push(Event::Acquire { lock: inner, line, pos: i, end });
                }
                out.push(Event::Call {
                    name: t.to_string(),
                    recv: None,
                    qual,
                    method: false,
                    pos: i,
                    line,
                });
            }
        }
        Some(TokKind::Delim(b'[')) if i > 0 => {
            let indexes = match pf.kind(i - 1) {
                Some(TokKind::Delim(b')' | b']')) => true,
                Some(TokKind::Ident) => !is_keyword(pf.text(i - 1)),
                _ => false,
            };
            if indexes && !pf.lx.allowed(line, "index") {
                out.push(Event::Panic { kind: PanicKind::Index, line });
            }
        }
        Some(TokKind::Punct(b'/' | b'%')) if ctx.hot => {
            // Division by a non-literal divisor can panic on zero.  A
            // literal nonzero divisor cannot; neither can `/` in paths
            // (none exist post-lexing).
            let safe_literal = match pf.kind(i + 1) {
                Some(TokKind::Num { .. }) => pf.text(i + 1).chars().any(|c| c != '0' && c.is_ascii_digit()),
                _ => false,
            };
            if !safe_literal && !pf.lx.allowed(line, "div") {
                out.push(Event::Panic { kind: PanicKind::Div, line });
            }
        }
        _ => {}
    }
}

/// Resolves the receiver of `.lock()/.read()/.write()` to a lock's inner
/// type via the fn's own bindings, then the workspace lock table.
fn lock_inner(pf: &ParsedFile, f: &FnDef, ctx: &EventCtx, recv: &str) -> Option<String> {
    if let Some(tys) = f.locals.get(recv) {
        if let Some(p) = tys.iter().position(|t| t == "Mutex" || t == "RwLock") {
            // Same identity normalization as `collect_decls`: skip bare
            // type parameters, name std-container inners after the binding.
            return match tys.get(p + 1) {
                Some(inner) if inner.chars().count() <= 1 => None,
                Some(inner) if is_std_container(inner) => Some(recv.to_string()),
                Some(inner) => Some(inner.clone()),
                None => None,
            };
        }
    }
    if let Some(inner) = pf.lock_decls.get(recv) {
        return Some(inner.clone());
    }
    ctx.lock_decls.get(recv).cloned()
}

/// A free call to a guard-returning helper acquires that helper's lock.
/// Generic helpers (`MutexGuard<'_, T>`) are resolved through the call's
/// argument idents against the lock table.
fn guard_call_inner(
    pf: &ParsedFile,
    f: &FnDef,
    ctx: &EventCtx,
    i: usize,
    name: &str,
) -> Option<String> {
    let declared = ctx.guard_fns.get(name)?;
    // Concrete inner type (more than one char => not a bare generic).
    if declared.chars().count() > 1 {
        return Some(declared.clone());
    }
    // Generic: scan the argument tokens for a known lock name.  File-local
    // declarations win over the merged workspace table — field names like
    // `inner` repeat across crates with different lock identities.
    let open = i + 1;
    let close = pf.close.get(open).copied().filter(|&c| c != NO_MATCH)?;
    for global in [false, true] {
        for k in open + 1..close {
            let Some(arg) = pf.ident(k) else { continue };
            let hit = if global {
                lock_inner(pf, f, ctx, arg)
            } else {
                f.locals
                    .get(arg)
                    .and_then(|tys| {
                        tys.iter()
                            .position(|t| t == "Mutex" || t == "RwLock")
                            .and_then(|p| tys.get(p + 1))
                            .filter(|inner| inner.chars().count() > 1)
                            .map(|inner| {
                                if is_std_container(inner) {
                                    arg.to_string()
                                } else {
                                    inner.clone()
                                }
                            })
                    })
                    .or_else(|| pf.lock_decls.get(arg).cloned())
            };
            if let Some(inner) = hit {
                return Some(inner);
            }
        }
    }
    // Unresolvable generic: better to drop the acquisition than to invent
    // a `T` identity that aliases every generic helper in the workspace.
    None
}

/// Where an acquisition stops being held: bound guards (`let g = …` or an
/// assignment) live to the end of the enclosing block, temporaries to the
/// end of their statement.
fn held_region_end(pf: &ParsedFile, i: usize, body_close: usize) -> usize {
    // Walk back over the receiver chain to the expression head.
    let mut head = i;
    let mut k = i;
    let mut steps = 0;
    while k > 0 && steps < 40 {
        k -= 1;
        steps += 1;
        match pf.kind(k) {
            Some(TokKind::Punct(b'.')) | Some(TokKind::Op2([b':', b':'])) => {}
            Some(TokKind::Ident) if !is_keyword(pf.text(k)) || pf.text(k) == "self" => head = k,
            Some(TokKind::Punct(b'&')) => head = k,
            _ => break,
        }
    }
    let bound = head > 0 && pf.kind(head - 1) == Some(TokKind::Punct(b'='));
    if bound {
        return pf.encl_block.get(i).copied().unwrap_or(body_close).min(body_close);
    }
    // Temporary: next `;` at delimiter depth 0 relative to here.
    let mut depth = 0i32;
    let mut j = i;
    while j < body_close {
        match pf.kind(j) {
            Some(TokKind::Delim(b'(' | b'[' | b'{')) => depth += 1,
            Some(TokKind::Delim(b')' | b']' | b'}')) => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            Some(TokKind::Punct(b';')) if depth <= 0 => return j,
            _ => {}
        }
        j += 1;
    }
    body_close
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_s(rel: &str, src: &str) -> ParsedFile {
        parse(rel, src.to_string())
    }

    fn fn_named<'a>(pf: &'a ParsedFile, name: &str) -> &'a FnDef {
        pf.fns.iter().find(|f| f.name == name).expect("fn present")
    }

    #[test]
    fn crate_mapping() {
        assert_eq!(crate_of("crates/core/src/engine.rs"), Some("xtk_core"));
        assert_eq!(crate_of("crates/obs/src/trace.rs"), Some("xtk_obs"));
        assert_eq!(crate_of("crates/lint/src/lexer.rs"), None);
        assert_eq!(crate_of("src/main.rs"), None);
    }

    #[test]
    fn fn_signatures_and_owners() {
        let src = r#"
            pub struct Engine { ix: u32 }
            impl Engine {
                pub fn run(&self, q: &Query, req: &QueryRequest) -> QueryResponse {
                    run_in_memory(self.ix, q, req)
                }
                fn helper(&self) {}
            }
            impl Executor for Engine {
                fn execute(&self, q: &Query) -> io::Result<QueryResponse> {
                    Ok(self.run(q, &Default::default()))
                }
            }
            pub fn free(x: usize) -> usize { x }
        "#;
        let pf = parse_s("crates/core/src/engine.rs", src);
        let run = fn_named(&pf, "run");
        assert!(run.is_pub);
        assert_eq!(run.owner.as_deref(), Some("Engine"));
        assert_eq!(run.trait_name, None);
        assert_eq!(run.ret, vec!["QueryResponse"]);
        assert_eq!(run.locals.get("q"), Some(&vec!["Query".to_string()]));
        let exec = fn_named(&pf, "execute");
        assert_eq!(exec.owner.as_deref(), Some("Engine"));
        assert_eq!(exec.trait_name.as_deref(), Some("Executor"));
        assert_eq!(exec.ret, vec!["io", "Result", "QueryResponse"]);
        assert!(!exec.is_pub);
        let free = fn_named(&pf, "free");
        assert!(free.is_pub && free.owner.is_none());
    }

    #[test]
    fn trait_decl_and_generics() {
        let src = r#"
            pub trait Executor {
                fn execute(&self, q: &Query) -> io::Result<QueryResponse>;
                fn generation(&self) -> u64 { 0 }
            }
            impl<E: Executor + ?Sized> Executor for &E {
                fn execute(&self, q: &Query) -> io::Result<QueryResponse> {
                    (**self).execute(q)
                }
            }
            pub fn parallel_map<I, O, F>(items: &[I], f: F) -> Vec<O>
            where
                F: Fn(usize, &I) -> O,
            {
                Vec::new()
            }
        "#;
        let pf = parse_s("crates/xml/src/pool.rs", src);
        let decls: Vec<_> = pf.fns.iter().filter(|f| f.name == "execute").collect();
        assert_eq!(decls.len(), 2);
        assert_eq!(decls.first().map(|f| f.owner.as_deref()), Some(Some("Executor")));
        assert!(decls.first().is_some_and(|f| f.body.is_none()), "trait decl has no body");
        let gen = fn_named(&pf, "generation");
        assert!(gen.body.is_some(), "default trait method has a body");
        let pm = fn_named(&pf, "parallel_map");
        assert!(pm.body.is_some(), "where clause precedes the body");
        assert_eq!(pm.ret, vec!["Vec", "O"]);
    }

    #[test]
    fn loop_depths_and_events() {
        let src = r#"
            pub fn hot(xs: &[u32]) -> Vec<u32> {
                let mut out = Vec::new();
                for x in xs {
                    let v = format!("{x}");
                    let w: Vec<u32> = xs.iter().copied().collect();
                    out.extend(w);
                    helper(*x);
                }
                out
            }
            fn helper(x: u32) {}
        "#;
        let pf = parse_s("crates/core/src/topk.rs", src);
        let ctx = EventCtx {
            lock_decls: &BTreeMap::new(),
            guard_fns: &BTreeMap::new(),
            hot: false,
        };
        let fi = pf.fns.iter().position(|f| f.name == "hot").expect("hot");
        let evs = events(&pf, fi, &ctx);
        let allocs: Vec<(&str, u32)> = evs
            .iter()
            .filter_map(|e| match e {
                Event::Alloc { what, depth, .. } => Some((*what, *depth)),
                _ => None,
            })
            .collect();
        assert!(allocs.contains(&("Vec::new()", 0)), "{allocs:?}");
        assert!(allocs.contains(&("format!", 1)), "{allocs:?}");
        assert!(allocs.contains(&(".collect()", 1)), "{allocs:?}");
        let calls: Vec<&str> = evs
            .iter()
            .filter_map(|e| match e {
                Event::Call { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert!(calls.contains(&"helper"), "{calls:?}");
    }

    #[test]
    fn lock_acquisition_and_regions() {
        let src = r#"
            pub struct Cache {
                shards: Vec<Mutex<Shard>>,
                inner: Mutex<CacheInner>,
            }
            fn lock_shard<'a>(m: &'a Mutex<Shard>) -> MutexGuard<'a, Shard> {
                m.lock().unwrap_or_else(|p| p.into_inner())
            }
            impl Cache {
                fn get(&self, key: u64) -> u64 {
                    let mut shard = lock_shard(self.pick(key));
                    shard.touch(key);
                    key
                }
                fn quick(&self) -> usize {
                    lock_shard(self.pick(0)).len();
                    0
                }
            }
        "#;
        let pf = parse_s("crates/index/src/cache.rs", src);
        assert_eq!(pf.lock_decls.get("shards"), Some(&"Shard".to_string()));
        assert_eq!(pf.lock_decls.get("inner"), Some(&"CacheInner".to_string()));
        let mut guard_fns = BTreeMap::new();
        guard_fns.insert("lock_shard".to_string(), "Shard".to_string());
        let ctx = EventCtx { lock_decls: &pf.lock_decls.clone(), guard_fns: &guard_fns, hot: false };
        // Direct `.lock()` inside the helper resolves through the param type.
        let hi = pf.fns.iter().position(|f| f.name == "lock_shard").expect("helper");
        let hevs = events(&pf, hi, &ctx);
        assert!(
            hevs.iter().any(|e| matches!(e, Event::Acquire { lock, .. } if lock == "Shard")),
            "direct .lock() resolved"
        );
        // Bound guard: held to end of block; temporary: held to its statement.
        let gi = pf.fns.iter().position(|f| f.name == "get").expect("get");
        let gevs = events(&pf, gi, &ctx);
        let bound = gevs.iter().find_map(|e| match e {
            Event::Acquire { lock, pos, end, .. } if lock == "Shard" => Some((*pos, *end)),
            _ => None,
        });
        let (pos, end) = bound.expect("guard acquire");
        let body_close = pf.fns.get(gi).and_then(|f| f.body).map(|(_, c)| c).unwrap_or(0);
        assert_eq!(end, body_close, "bound guard lives to the block end");
        assert!(pos < end);
        let qi = pf.fns.iter().position(|f| f.name == "quick").expect("quick");
        let qevs = events(&pf, qi, &ctx);
        let temp = qevs.iter().find_map(|e| match e {
            Event::Acquire { pos, end, .. } => Some((*pos, *end)),
            _ => None,
        });
        let (pos, end) = temp.expect("temp acquire");
        let qclose = pf.fns.get(qi).and_then(|f| f.body).map(|(_, c)| c).unwrap_or(0);
        assert!(end < qclose, "temporary guard ends at its statement");
        assert!(pos < end);
    }

    #[test]
    fn panic_sites_and_div_in_hot_modules() {
        let src = r#"
            pub fn f(v: &[u32], o: Option<u32>, n: usize) -> u32 {
                let a = o.unwrap();
                let b = v[0];
                let c = v.len() / n;
                let d = v.len() / 2;
                if n == 0 { panic!("zero"); }
                a + b + (c + d) as u32
            }
        "#;
        let pf = parse_s("crates/core/src/joinbased.rs", src);
        let ctx = EventCtx { lock_decls: &BTreeMap::new(), guard_fns: &BTreeMap::new(), hot: true };
        let evs = events(&pf, 0, &ctx);
        let kinds: Vec<PanicKind> = evs
            .iter()
            .filter_map(|e| match e {
                Event::Panic { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect();
        assert!(kinds.contains(&PanicKind::Unwrap), "{kinds:?}");
        assert!(kinds.contains(&PanicKind::Index), "{kinds:?}");
        assert!(kinds.contains(&PanicKind::Macro), "{kinds:?}");
        assert_eq!(kinds.iter().filter(|&&k| k == PanicKind::Div).count(), 1, "literal divisor is safe");
        // The same file in a cold module reports no Div sites.
        let cold = EventCtx { lock_decls: &BTreeMap::new(), guard_fns: &BTreeMap::new(), hot: false };
        let evs = events(&pf, 0, &cold);
        assert!(evs.iter().all(|e| !matches!(e, Event::Panic { kind: PanicKind::Div, .. })));
    }

    #[test]
    fn nested_fns_do_not_leak_events() {
        let src = r#"
            pub fn outer() -> u32 {
                fn inner(o: Option<u32>) -> u32 { o.unwrap() }
                inner(Some(1))
            }
        "#;
        let pf = parse_s("crates/core/src/engine.rs", src);
        let ctx = EventCtx { lock_decls: &BTreeMap::new(), guard_fns: &BTreeMap::new(), hot: false };
        let oi = pf.fns.iter().position(|f| f.name == "outer").expect("outer");
        let oevs = events(&pf, oi, &ctx);
        assert!(
            oevs.iter().all(|e| !matches!(e, Event::Panic { .. })),
            "inner fn's unwrap stays out of outer's events"
        );
        let ii = pf.fns.iter().position(|f| f.name == "inner").expect("inner");
        let ievs = events(&pf, ii, &ctx);
        assert!(ievs.iter().any(|e| matches!(e, Event::Panic { kind: PanicKind::Unwrap, .. })));
    }

    #[test]
    fn test_items_are_skipped() {
        let src = r#"
            pub fn lib_fn() -> u32 { 1 }
            #[cfg(test)]
            mod tests {
                fn t(o: Option<u32>) -> u32 { o.unwrap() }
            }
        "#;
        let pf = parse_s("crates/core/src/engine.rs", src);
        let t = fn_named(&pf, "t");
        assert!(t.in_test);
        assert!(!fn_named(&pf, "lib_fn").in_test);
    }
}
