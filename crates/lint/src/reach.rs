//! L6 — panic-reachability for public query-path entry points.
//!
//! For each entry point on the `Executor`/`Engine`/`ShardedEngine` query
//! path we BFS the call graph and sum the *direct* panic sites (slice
//! indexing, `unwrap`/`expect`, panic macros, unchecked division in hot
//! modules) of every reachable function.  The per-entry-point totals are
//! ratcheted in `lint-baseline.json`: a count may go down (tighten the
//! baseline with `--update-baseline`) but never up.

use crate::graph::{FnId, Workspace};
use crate::parser::PanicKind;
use std::collections::BTreeMap;

/// The public entry points of the query path, as `(owner, fn)` pairs.
/// These are the API surfaces ISSUE/DESIGN designate: the in-memory
/// engine, the disk executor, the sharded scatter-gather engine and the
/// batch executor.
pub const ENTRY_POINTS: &[(&str, &str)] = &[
    ("Engine", "run"),
    ("Engine", "run_batch"),
    ("Engine", "run_batch_report"),
    ("Engine", "query"),
    ("Engine", "search"),
    ("Engine", "top_k"),
    ("Engine", "execute"),
    ("DiskEngine", "execute"),
    ("ShardedEngine", "execute"),
    ("BatchExecutor", "run"),
];

/// One reachable panic site, with the chain that proves reachability.
pub struct PanicPath {
    /// File of the function containing the panic site.
    pub file: String,
    pub line: u32,
    pub kind: PanicKind,
    /// Qualified call chain `entry → … → containing fn`.
    pub chain: Vec<String>,
}

/// The L6 result for one entry point.
pub struct EntryReport {
    /// Qualified entry name, the ratchet key (e.g. `xtk_core::Engine::run`).
    pub qual: String,
    /// Total reachable direct panic sites.
    pub count: u32,
    /// Number of distinct reachable workspace functions.
    pub fn_count: u32,
    /// Every reachable site with one example chain each, sorted by
    /// `(file, line)` for stable reports.
    pub paths: Vec<PanicPath>,
}

/// Runs L6 over every entry point present in the workspace.  Entry
/// points whose owner/fn pair does not resolve are skipped (e.g. a
/// fixture workspace without a `ShardedEngine`).
pub fn analyze(ws: &Workspace) -> Vec<EntryReport> {
    let mut out = Vec::new();
    for &(owner, name) in ENTRY_POINTS {
        for &entry in ws.lookup_method(owner, name) {
            if !ws.fn_def(entry).is_some_and(|f| f.is_pub) {
                continue;
            }
            out.push(analyze_entry(ws, entry));
        }
    }
    out.sort_by(|a, b| a.qual.cmp(&b.qual));
    out.dedup_by(|a, b| a.qual == b.qual);
    out
}

fn analyze_entry(ws: &Workspace, entry: FnId) -> EntryReport {
    let (order, pred) = ws.reachable(entry);
    let mut paths: Vec<PanicPath> = Vec::new();
    for &id in &order {
        let Some(info) = ws.fns.get(id) else { continue };
        for &(kind, line) in &info.panics {
            paths.push(PanicPath {
                file: ws.file_of(id).to_string(),
                line,
                kind,
                chain: ws.chain(&pred, entry, id),
            });
        }
    }
    paths.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    let qual = ws
        .fns
        .get(entry)
        .map(|i| i.qual.clone())
        .unwrap_or_default();
    EntryReport {
        qual,
        count: paths.len() as u32,
        fn_count: order.len() as u32,
        paths,
    }
}

/// Compares entry-point counts against the baseline ratchet.  Returns
/// human-readable regression lines; empty means the ratchet holds.
pub fn regressions(
    reports: &[EntryReport],
    baseline: &BTreeMap<String, u32>,
) -> Vec<String> {
    let mut out = Vec::new();
    for r in reports {
        match baseline.get(&r.qual) {
            Some(&base) if r.count > base => out.push(format!(
                "L6 regression: {} reaches {} panic sites (baseline {})",
                r.qual, r.count, base
            )),
            None if r.count > 0 => out.push(format!(
                "L6 regression: new entry point {} reaches {} panic sites (no baseline; run --update-baseline after review)",
                r.qual, r.count
            )),
            _ => {}
        }
    }
    out
}

/// One-line ratchet delta summary for CI logs.
pub fn delta_line(reports: &[EntryReport], baseline: &BTreeMap<String, u32>) -> String {
    let cur: u32 = reports.iter().map(|r| r.count).sum();
    let base: u32 = reports
        .iter()
        .map(|r| baseline.get(&r.qual).copied().unwrap_or(0))
        .sum();
    let sign = match cur.cmp(&base) {
        std::cmp::Ordering::Less => "improved",
        std::cmp::Ordering::Equal => "held",
        std::cmp::Ordering::Greater => "REGRESSED",
    };
    format!(
        "L6 ratchet {sign}: {cur} reachable panic sites across {} entry points (baseline {base})",
        reports.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Workspace;
    use crate::parser;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files.iter().map(|(rel, src)| parser::parse(rel, src.to_string())).collect(),
        )
    }

    #[test]
    fn entry_point_reaches_transitive_panics() {
        let w = ws(&[(
            "crates/core/src/engine.rs",
            r#"
            pub struct Engine;
            impl Engine {
                pub fn run(&self, q: &str) -> u32 { helper(q) }
            }
            fn helper(q: &str) -> u32 { inner(q) }
            fn inner(q: &str) -> u32 { q.len() as u32; q.parse().unwrap() }
            "#,
        )]);
        let reports = analyze(&w);
        assert_eq!(reports.len(), 1);
        let r = reports.first().expect("one entry");
        assert_eq!(r.qual, "xtk_core::Engine::run");
        assert_eq!(r.count, 1);
        assert!(r.fn_count >= 3);
        let p = r.paths.first().expect("one path");
        assert_eq!(
            p.chain,
            vec![
                "xtk_core::Engine::run",
                "xtk_core::engine::helper",
                "xtk_core::engine::inner"
            ]
        );
    }

    #[test]
    fn clean_entry_reports_zero() {
        let w = ws(&[(
            "crates/core/src/engine.rs",
            r#"
            pub struct Engine;
            impl Engine {
                pub fn run(&self, q: &str) -> usize { q.len() }
            }
            "#,
        )]);
        let reports = analyze(&w);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports.first().map(|r| r.count), Some(0));
    }

    #[test]
    fn ratchet_regression_and_improvement() {
        let w = ws(&[(
            "crates/core/src/engine.rs",
            r#"
            pub struct Engine;
            impl Engine {
                pub fn run(&self, o: Option<u32>) -> u32 { o.unwrap() }
            }
            "#,
        )]);
        let reports = analyze(&w);
        // Baseline says 0 -> regression.
        let mut base = BTreeMap::new();
        base.insert("xtk_core::Engine::run".to_string(), 0u32);
        assert_eq!(regressions(&reports, &base).len(), 1);
        assert!(delta_line(&reports, &base).contains("REGRESSED"));
        // Baseline says 1 -> holds.
        base.insert("xtk_core::Engine::run".to_string(), 1u32);
        assert!(regressions(&reports, &base).is_empty());
        assert!(delta_line(&reports, &base).contains("held"));
        // Baseline says 2 -> improvement allowed.
        base.insert("xtk_core::Engine::run".to_string(), 2u32);
        assert!(regressions(&reports, &base).is_empty());
        assert!(delta_line(&reports, &base).contains("improved"));
    }

    #[test]
    fn new_entry_point_with_panics_is_flagged() {
        let w = ws(&[(
            "crates/core/src/shard.rs",
            r#"
            pub struct ShardedEngine;
            impl ShardedEngine {
                pub fn execute(&self, o: Option<u32>) -> u32 { o.unwrap() }
            }
            "#,
        )]);
        let reports = analyze(&w);
        let base = BTreeMap::new();
        let regs = regressions(&reports, &base);
        assert_eq!(regs.len(), 1);
        assert!(regs.first().is_some_and(|m| m.contains("new entry point")));
    }

    #[test]
    fn non_pub_entry_is_skipped() {
        let w = ws(&[(
            "crates/core/src/engine.rs",
            r#"
            pub struct Engine;
            impl Engine {
                fn run(&self, o: Option<u32>) -> u32 { o.unwrap() }
            }
            "#,
        )]);
        assert!(analyze(&w).is_empty());
    }
}
