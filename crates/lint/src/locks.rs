//! L7 — lock-order analysis.
//!
//! Harvests every `Mutex`/`RwLock` acquisition site (the `BlockCache`
//! shards, the `ResultCache`, pool queues), builds the *lock-order
//! graph* — an edge `A → B` whenever `B` is acquired (directly or via a
//! call) while a guard for `A` is still live — and hard-fails on:
//!
//! * a cycle in the lock-order graph (potential deadlock between two
//!   threads acquiring in opposite orders), and
//! * a lock held across a thread-pool submit (`parallel_map`), which
//!   serializes the fan-out and deadlocks if a worker needs the lock.
//!
//! There is no ratchet for L7: the graph must be acyclic, always.

use crate::graph::Workspace;
use crate::parser::Event;
use std::collections::{BTreeMap, BTreeSet};

/// One lock-order edge with provenance.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Lock held (inner-type identity, e.g. `Shard`, `CacheInner`).
    pub held: String,
    /// Lock acquired while `held` is live.
    pub acquired: String,
    /// `file:line` of the acquisition that creates the edge.
    pub site: String,
    /// Qualified fn containing the held guard.
    pub in_fn: String,
}

/// A lock held across a `parallel_map` submit.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct HeldAcrossPool {
    pub lock: String,
    pub site: String,
    pub in_fn: String,
}

/// The full L7 result.
pub struct LockReport {
    /// All distinct lock identities seen, sorted.
    pub locks: Vec<String>,
    /// Lock-order edges, sorted and deduplicated.
    pub edges: Vec<LockEdge>,
    /// Cycles found (each as the lock sequence closing the loop).
    pub cycles: Vec<Vec<String>>,
    pub held_across_pool: Vec<HeldAcrossPool>,
}

/// Runs L7 over the workspace.
pub fn analyze(ws: &Workspace) -> LockReport {
    let trans = ws.transitive_locks();
    let pool = ws.reaches_pool();

    let mut locks: BTreeSet<String> = BTreeSet::new();
    let mut edges: BTreeSet<LockEdge> = BTreeSet::new();
    let mut held_across_pool: BTreeSet<HeldAcrossPool> = BTreeSet::new();

    for info in &ws.fns {
        let file = ws
            .files
            .get(info.file)
            .map(|pf| pf.rel.as_str())
            .unwrap_or("?");
        // Collect this fn's acquisitions with their held regions.  A
        // statement like `let g = recover(self.m.lock())` emits two
        // Acquire events for the same lock — one for `.lock()`, one for
        // the guard-returning wrapper — so acquisitions of the same lock
        // on the same line merge into one region (earliest start, widest
        // end) before any edges are drawn.
        let mut acquires: Vec<(String, u32, usize, usize)> = Vec::new();
        for ev in &info.events {
            let Event::Acquire { lock, line, pos, end } = ev else { continue };
            match acquires.iter_mut().find(|(l, ln, ..)| l == lock && ln == line) {
                Some(slot) => {
                    slot.2 = slot.2.min(*pos);
                    slot.3 = slot.3.max(*end);
                }
                None => acquires.push((lock.clone(), *line, *pos, *end)),
            }
        }
        for (lock, ..) in &acquires {
            locks.insert(lock.clone());
        }
        for &(ref held, _line, pos, end) in &acquires {
            // Later events inside [pos, end) happen while `held` is live.
            for &(ref lock, line, p2, _) in &acquires {
                if p2 > pos && p2 < end {
                    edges.insert(LockEdge {
                        held: held.clone(),
                        acquired: lock.clone(),
                        site: format!("{file}:{line}"),
                        in_fn: info.qual.clone(),
                    });
                }
            }
            for ev in &info.events {
                if let Event::Call { name, pos: p2, line, .. } = ev {
                    if *p2 <= pos || *p2 >= end {
                        continue;
                    }
                    // A call made while holding `held`: everything the
                    // callee transitively locks is ordered after
                    // `held`, and a callee that reaches the pool is a
                    // held-across-submit violation.
                    for callee in resolve_event_callees(ws, info, name, *p2) {
                        if let Some(set) = trans.get(callee) {
                            for acq in set {
                                edges.insert(LockEdge {
                                    held: held.clone(),
                                    acquired: acq.clone(),
                                    site: format!("{file}:{line}"),
                                    in_fn: info.qual.clone(),
                                });
                            }
                        }
                        let is_pool = ws
                            .fn_def(callee)
                            .is_some_and(|f| f.name == "parallel_map")
                            || pool.get(callee).copied().unwrap_or(false);
                        if is_pool {
                            held_across_pool.insert(HeldAcrossPool {
                                lock: held.clone(),
                                site: format!("{file}:{line}"),
                                in_fn: info.qual.clone(),
                            });
                        }
                    }
                }
            }
        }
    }

    let edges: Vec<LockEdge> = edges.into_iter().collect();
    let cycles = find_cycles(&locks, &edges);
    LockReport {
        locks: locks.into_iter().collect(),
        edges,
        cycles,
        held_across_pool: held_across_pool.into_iter().collect(),
    }
}

/// Resolves the callees of one call event of `info` by matching the
/// resolved edge list against the event name (the graph stores resolved
/// edges per fn; we re-filter by name so an unrelated callee of the same
/// fn does not inherit this event's position).
fn resolve_event_callees(
    ws: &Workspace,
    info: &crate::graph::FnInfo,
    name: &str,
    _pos: usize,
) -> Vec<crate::graph::FnId> {
    info.calls
        .iter()
        .copied()
        .filter(|&c| ws.fn_def(c).is_some_and(|f| f.name == name))
        .collect()
}

/// DFS cycle detection over the lock-order graph; returns each cycle as
/// the sequence of locks that closes it.
fn find_cycles(locks: &BTreeSet<String>, edges: &[LockEdge]) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        if e.held != e.acquired {
            adj.entry(e.held.as_str()).or_default().insert(e.acquired.as_str());
        }
    }
    // Self-edges (re-acquiring the same lock while held) are reported as
    // one-element cycles: with std Mutex that is an immediate deadlock.
    let mut cycles: Vec<Vec<String>> = edges
        .iter()
        .filter(|e| e.held == e.acquired)
        .map(|e| vec![e.held.clone()])
        .collect();

    let mut done: BTreeSet<&str> = BTreeSet::new();
    for start in locks.iter().map(String::as_str) {
        if done.contains(start) {
            continue;
        }
        // Iterative DFS with an explicit path stack.
        let mut path: Vec<&str> = vec![start];
        let mut iters: Vec<Vec<&str>> = vec![adj
            .get(start)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()];
        while let Some(next_set) = iters.last_mut() {
            match next_set.pop() {
                Some(n) => {
                    if let Some(i) = path.iter().position(|&p| p == n) {
                        let mut cyc: Vec<String> =
                            path.get(i..).unwrap_or_default().iter().map(|s| s.to_string()).collect();
                        cyc.push(n.to_string());
                        cycles.push(cyc);
                    } else if !done.contains(n) {
                        path.push(n);
                        iters.push(
                            adj.get(n).map(|s| s.iter().copied().collect()).unwrap_or_default(),
                        );
                    }
                }
                None => {
                    if let Some(fin) = path.pop() {
                        done.insert(fin);
                    }
                    iters.pop();
                }
            }
        }
    }
    cycles.sort();
    cycles.dedup();
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Workspace;
    use crate::parser;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files.iter().map(|(rel, src)| parser::parse(rel, src.to_string())).collect(),
        )
    }

    #[test]
    fn acyclic_workspace_is_clean() {
        let w = ws(&[(
            "crates/index/src/cache.rs",
            r#"
            pub struct Cache { inner: Mutex<Inner> }
            impl Cache {
                pub fn get(&self) -> u32 { let g = self.inner.lock(); 1 }
                pub fn put(&self) -> u32 { let g = self.inner.lock(); 2 }
            }
            "#,
        )]);
        let r = analyze(&w);
        assert_eq!(r.locks, vec!["Inner".to_string()]);
        assert!(r.edges.is_empty(), "{:?}", r.edges);
        assert!(r.cycles.is_empty());
        assert!(r.held_across_pool.is_empty());
    }

    #[test]
    fn nested_direct_acquisition_makes_an_edge() {
        let w = ws(&[(
            "crates/core/src/m.rs",
            r#"
            pub struct S { a: Mutex<LockA>, b: Mutex<LockB> }
            impl S {
                pub fn ab(&self) -> u32 {
                    let ga = self.a.lock();
                    let gb = self.b.lock();
                    0
                }
            }
            "#,
        )]);
        let r = analyze(&w);
        assert_eq!(r.edges.len(), 1);
        let e = r.edges.first().expect("edge");
        assert_eq!((e.held.as_str(), e.acquired.as_str()), ("LockA", "LockB"));
        assert!(r.cycles.is_empty());
    }

    #[test]
    fn opposite_orders_form_a_cycle() {
        let w = ws(&[(
            "crates/core/src/m.rs",
            r#"
            pub struct S { a: Mutex<LockA>, b: Mutex<LockB> }
            impl S {
                pub fn ab(&self) -> u32 { let ga = self.a.lock(); let gb = self.b.lock(); 0 }
                pub fn ba(&self) -> u32 { let gb = self.b.lock(); let ga = self.a.lock(); 0 }
            }
            "#,
        )]);
        let r = analyze(&w);
        assert_eq!(r.cycles.len(), 1, "{:?}", r.cycles);
        let c = r.cycles.first().expect("cycle");
        assert!(c.len() >= 2);
    }

    #[test]
    fn transitive_acquisition_through_a_call_is_seen() {
        let w = ws(&[(
            "crates/core/src/m.rs",
            r#"
            pub struct S { a: Mutex<LockA>, b: Mutex<LockB> }
            impl S {
                pub fn outer(&self) -> u32 { let ga = self.a.lock(); self.take_b() }
                fn take_b(&self) -> u32 { let gb = self.b.lock(); 0 }
            }
            "#,
        )]);
        let r = analyze(&w);
        assert!(
            r.edges.iter().any(|e| e.held == "LockA" && e.acquired == "LockB"),
            "{:?}",
            r.edges
        );
    }

    #[test]
    fn self_reacquisition_is_a_cycle() {
        let w = ws(&[(
            "crates/core/src/m.rs",
            r#"
            pub struct S { a: Mutex<LockA> }
            impl S {
                pub fn outer(&self) -> u32 { let ga = self.a.lock(); self.again() }
                fn again(&self) -> u32 { let g = self.a.lock(); 0 }
            }
            "#,
        )]);
        let r = analyze(&w);
        assert_eq!(r.cycles, vec![vec!["LockA".to_string()]]);
    }

    #[test]
    fn lock_held_across_pool_submit_is_flagged() {
        let w = ws(&[
            (
                "crates/core/src/m.rs",
                r#"
                pub struct S { a: Mutex<LockA> }
                impl S {
                    pub fn bad(&self, xs: &[u32]) -> u32 {
                        let ga = self.a.lock();
                        parallel_map(xs)
                    }
                    pub fn good(&self, xs: &[u32]) -> u32 {
                        { let ga = self.a.lock(); }
                        parallel_map(xs)
                    }
                }
                "#,
            ),
            (
                "crates/xml/src/pool.rs",
                "pub fn parallel_map(items: &[u32]) -> u32 { 0 }\n",
            ),
        ]);
        let r = analyze(&w);
        assert_eq!(r.held_across_pool.len(), 1, "{:?}", r.held_across_pool);
        let h = r.held_across_pool.first().expect("violation");
        assert_eq!(h.lock, "LockA");
        assert!(h.in_fn.ends_with("S::bad"));
    }

    #[test]
    fn temporary_guard_does_not_extend_past_statement() {
        let w = ws(&[
            (
                "crates/core/src/m.rs",
                r#"
                pub struct S { a: Mutex<LockA> }
                impl S {
                    pub fn ok(&self, xs: &[u32]) -> u32 {
                        self.a.lock().len();
                        parallel_map(xs)
                    }
                }
                "#,
            ),
            (
                "crates/xml/src/pool.rs",
                "pub fn parallel_map(items: &[u32]) -> u32 { 0 }\n",
            ),
        ]);
        let r = analyze(&w);
        assert!(r.held_across_pool.is_empty(), "{:?}", r.held_across_pool);
    }
}
