//! Workspace discovery: find the root and collect every `.rs` file the
//! lints should look at.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into.  `tests/`, `benches/` and
/// `examples/` are exempt from every rule, and `fixtures/` holds the lint
/// crate's own deliberately-bad inputs.
const SKIP_DIRS: &[&str] = &["target", "fixtures", "tests", "benches", "examples"];

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if let Ok(text) = fs::read_to_string(d.join("Cargo.toml")) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collects `(repo_relative, absolute)` paths of all `.rs` files under
/// `root`, sorted by relative path so every run reports in the same
/// order.
pub fn collect_rs(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    visit(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn visit(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            visit(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push((rel, path));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("lint crate lives inside the workspace");
        assert!(root.join("ci.sh").exists() || root.join("Cargo.toml").exists());
        let files = collect_rs(&root).unwrap();
        assert!(
            files.iter().any(|(rel, _)| rel == "crates/lint/src/walk.rs"),
            "walker must find its own source"
        );
        assert!(
            !files.iter().any(|(rel, _)| rel.contains("fixtures/")),
            "fixtures are not scanned"
        );
        // Sorted and unique.
        let mut sorted = files.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted, files);
    }
}
