//! L8 — allocation inside hot loops.
//!
//! The join (`joinbased`), the disk executor (`diskexec`), the top-K
//! star join (`topk`) and the shard merge (`shard`) are the per-query
//! inner loops of the engine; an allocation there multiplies with
//! result-set size.  L8 flags `Vec::new`, `vec![…]`, `.to_vec()`,
//! `.collect()` and `format!` at loop depth ≥ 1 in those modules.
//!
//! Suppression requires a reason: `// lint:allow(L8, hoisted — bounded
//! by k)` on the site's own line or the line above.  A bare
//! `lint:allow(L8)` is itself a finding (missing reason).

use crate::graph::{Workspace, L8_MODULES};
use crate::parser::Event;

/// One L8 finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct HotAlloc {
    pub file: String,
    pub line: u32,
    /// `Vec::new` / `vec!` / `to_vec` / `collect` / `format!`.
    pub what: String,
    /// Loop nesting depth at the site (≥ 1).
    pub depth: u32,
    pub in_fn: String,
    /// True when a `lint:allow(L8)` was present but carried no reason —
    /// the finding then reports the missing reason instead of the alloc.
    pub missing_reason: bool,
}

/// One accepted suppression (reported for the JSON audit trail).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Suppressed {
    pub file: String,
    pub line: u32,
    pub what: String,
    pub reason: String,
}

pub struct HotLoopReport {
    pub findings: Vec<HotAlloc>,
    pub suppressed: Vec<Suppressed>,
}

/// Runs L8 over the workspace's hot modules.
pub fn analyze(ws: &Workspace) -> HotLoopReport {
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for info in &ws.fns {
        let Some(pf) = ws.files.get(info.file) else { continue };
        if !L8_MODULES.contains(&pf.rel.as_str()) {
            continue;
        }
        for ev in &info.events {
            let Event::Alloc { what, line, depth, allowed, reason } = ev else { continue };
            if *depth == 0 {
                continue;
            }
            if *allowed {
                match reason {
                    Some(r) => suppressed.push(Suppressed {
                        file: pf.rel.clone(),
                        line: *line,
                        what: (*what).to_string(),
                        reason: r.clone(),
                    }),
                    None => findings.push(HotAlloc {
                        file: pf.rel.clone(),
                        line: *line,
                        what: (*what).to_string(),
                        depth: *depth,
                        in_fn: info.qual.clone(),
                        missing_reason: true,
                    }),
                }
            } else {
                findings.push(HotAlloc {
                    file: pf.rel.clone(),
                    line: *line,
                    what: (*what).to_string(),
                    depth: *depth,
                    in_fn: info.qual.clone(),
                    missing_reason: false,
                });
            }
        }
    }
    findings.sort();
    findings.dedup();
    suppressed.sort();
    suppressed.dedup();
    HotLoopReport { findings, suppressed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Workspace;
    use crate::parser;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files.iter().map(|(rel, src)| parser::parse(rel, src.to_string())).collect(),
        )
    }

    #[test]
    fn alloc_in_loop_in_hot_module_is_flagged() {
        let w = ws(&[(
            "crates/core/src/topk.rs",
            r#"
            pub fn scan(xs: &[u32]) -> u32 {
                let mut total = 0;
                for x in xs {
                    let buf = Vec::new();
                    total += buf.len() as u32 + x;
                }
                total
            }
            "#,
        )]);
        let r = analyze(&w);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        let f = r.findings.first().expect("finding");
        assert_eq!(f.what, "Vec::new()");
        assert_eq!(f.depth, 1);
        assert!(!f.missing_reason);
    }

    #[test]
    fn alloc_outside_loop_or_outside_hot_modules_is_fine() {
        let w = ws(&[
            (
                "crates/core/src/topk.rs",
                "pub fn setup(k: usize) -> u32 { let buf = Vec::new(); buf.len() as u32 }\n",
            ),
            (
                "crates/core/src/explain.rs",
                r#"
                pub fn render(xs: &[u32]) -> u32 {
                    let mut n = 0;
                    for x in xs { let s = format!("{x}"); n += s.len() as u32; }
                    n
                }
                "#,
            ),
        ]);
        assert!(analyze(&w).findings.is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_and_is_recorded() {
        let w = ws(&[(
            "crates/core/src/shard.rs",
            r#"
            pub fn merge(xs: &[u32]) -> u32 {
                let mut n = 0;
                for x in xs {
                    // lint:allow(L8, per-shard buffer bounded by k)
                    let buf = Vec::new();
                    n += buf.len() as u32 + x;
                }
                n
            }
            "#,
        )]);
        let r = analyze(&w);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(
            r.suppressed.first().map(|s| s.reason.as_str()),
            Some("per-shard buffer bounded by k")
        );
    }

    #[test]
    fn allow_without_reason_is_a_finding() {
        let w = ws(&[(
            "crates/core/src/diskexec.rs",
            r#"
            pub fn run(xs: &[u32]) -> u32 {
                let mut n = 0;
                for x in xs {
                    // lint:allow(L8)
                    let buf = Vec::new();
                    n += buf.len() as u32 + x;
                }
                n
            }
            "#,
        )]);
        let r = analyze(&w);
        assert_eq!(r.findings.len(), 1);
        assert!(r.findings.first().is_some_and(|f| f.missing_reason));
    }

    #[test]
    fn nested_depth_is_reported() {
        let w = ws(&[(
            "crates/core/src/joinbased.rs",
            r#"
            pub fn join(xs: &[u32], ys: &[u32]) -> u32 {
                let mut n = 0;
                for x in xs {
                    while n < 10 {
                        let s = ys.to_vec();
                        n += s.len() as u32 + x;
                    }
                }
                n
            }
            "#,
        )]);
        let r = analyze(&w);
        assert_eq!(r.findings.first().map(|f| f.depth), Some(2), "{:?}", r.findings);
    }
}
