//! A small Rust lexer — just enough token structure for the project lints.
//!
//! In the spirit of the in-tree XML parser and the `testutil` PRNG, this is
//! a dependency-free approximation of rustc's lexer: it distinguishes
//! identifiers, punctuation, delimiters, lifetimes and every literal form
//! that matters for *not* mis-reading code (strings, raw strings, byte
//! strings, chars, numbers), and it skips comments while harvesting
//! `lint:allow(...)` suppression directives from them.  It does not build
//! an AST; the rules in [`crate::rules`] pattern-match over the token
//! stream directly.

/// The category of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// A lifetime such as `'a` (the text excludes the quote).
    Lifetime,
    /// String, raw-string, byte-string or char literal.
    StrLike,
    /// Numeric literal; `true` when it is a float (has a `.`, an exponent
    /// or an `f32`/`f64` suffix).
    Num { float: bool },
    /// One of `( ) [ ] { }`.
    Delim(u8),
    /// A two-character operator the rules care about: `==`, `!=`, `->`,
    /// `=>`, `::`, `..`.
    Op2([u8; 2]),
    /// Any other single punctuation byte.
    Punct(u8),
}

/// One lexed token: kind plus the byte span and 1-based source line.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

/// A `lint:allow(rule)` / `lint:allow(rule, reason)` directive harvested
/// from a comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line the directive appears on (suppresses findings on this
    /// line and the next).
    pub line: u32,
    /// The rule name inside the parentheses (e.g. `hash-iter`, `L8`).
    pub rule: String,
    /// Everything after the first comma, trimmed.  Rules that demand a
    /// justification (L8) reject a suppression whose reason is empty.
    pub reason: Option<String>,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub allows: Vec<Allow>,
}

impl Lexed {
    /// The source text of a token.
    pub fn text<'a>(&self, src: &'a str, i: usize) -> &'a str {
        match self.tokens.get(i) {
            Some(t) => src.get(t.start..t.end).unwrap_or(""),
            None => "",
        }
    }

    /// `true` when `rule` (or `all`) is allowed on `line` — directives
    /// cover their own line and the line directly below, so a comment can
    /// sit above the code it suppresses.
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        self.allow_for(line, rule).is_some()
    }

    /// The directive covering `line` for `rule`, if any — for rules that
    /// inspect the suppression's reason.
    pub fn allow_for(&self, line: u32, rule: &str) -> Option<&Allow> {
        self.allows
            .iter()
            .find(|a| (a.line == line || a.line + 1 == line) && (a.rule == rule || a.rule == "all"))
    }
}

/// Lexes `src` into tokens, skipping comments and whitespace.
///
/// The lexer is total: any byte sequence produces a token stream (unknown
/// bytes become `Punct`), so a syntactically broken file never aborts the
/// lint run.
pub fn lex(src: &str) -> Lexed {
    Lexer { src: src.as_bytes(), text: src, pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
    line: u32,
    out: Lexed,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_char(b: u8) -> bool {
    is_ident_start(b) || b.is_ascii_digit()
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32) {
        self.out.tokens.push(Token { kind, start, end: self.pos, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_or_byte_string() => {}
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                _ if is_ident_start(b) => {
                    while matches!(self.peek(0), Some(c) if is_ident_char(c)) {
                        self.bump();
                    }
                    self.push(TokKind::Ident, start, line);
                }
                _ if b.is_ascii_digit() => self.number(start, line),
                b'(' | b')' | b'[' | b']' | b'{' | b'}' => {
                    self.bump();
                    self.push(TokKind::Delim(b), start, line);
                }
                _ => {
                    self.bump();
                    let two = match (b, self.peek(0)) {
                        (b'=', Some(b'=')) => Some([b'=', b'=']),
                        (b'!', Some(b'=')) => Some([b'!', b'=']),
                        (b'-', Some(b'>')) => Some([b'-', b'>']),
                        (b'=', Some(b'>')) => Some([b'=', b'>']),
                        (b':', Some(b':')) => Some([b':', b':']),
                        (b'.', Some(b'.')) => Some([b'.', b'.']),
                        _ => None,
                    };
                    if let Some(op) = two {
                        self.bump();
                        self.push(TokKind::Op2(op), start, line);
                    } else {
                        self.push(TokKind::Punct(b), start, line);
                    }
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let line = self.line;
        self.harvest_allow(start, self.pos, line);
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.harvest_allow(start, self.pos, line);
    }

    /// Records `lint:allow(rule)` / `lint:allow(rule, reason)` directives
    /// found inside a comment span.
    fn harvest_allow(&mut self, start: usize, end: usize, line: u32) {
        let Some(comment) = self.text.get(start..end) else { return };
        let mut rest = comment;
        while let Some(i) = rest.find("lint:allow(") {
            let Some(after) = rest.get(i + "lint:allow(".len()..) else { break };
            let Some(j) = after.find(')') else { break };
            let body = after.get(..j).unwrap_or("");
            let (rule, reason) = match body.split_once(',') {
                Some((r, why)) => {
                    let why = why.trim();
                    (r.trim(), (!why.is_empty()).then(|| why.to_string()))
                }
                None => (body.trim(), None),
            };
            if !rule.is_empty() {
                self.out.allows.push(Allow { line, rule: rule.to_string(), reason });
            }
            rest = after.get(j + 1..).unwrap_or("");
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#` and raw
    /// identifiers `r#ident`.  Returns `false` (consuming nothing) when the
    /// leading `r`/`b` starts a plain identifier such as `break`.
    fn raw_or_byte_string(&mut self) -> bool {
        let start = self.pos;
        let line = self.line;
        let prefix = match (self.peek(0), self.peek(1)) {
            (Some(b'b'), Some(b'\'')) => {
                self.bump();
                self.bump();
                self.char_body();
                self.push(TokKind::StrLike, start, line);
                return true;
            }
            (Some(b'b'), Some(b'"')) => {
                self.bump();
                self.bump();
                self.string_body();
                self.push(TokKind::StrLike, start, line);
                return true;
            }
            (Some(b'b'), Some(b'r')) => 2,
            (Some(b'r'), _) => 1,
            _ => return false,
        };
        let mut hashes = 0usize;
        while self.peek(prefix + hashes) == Some(b'#') {
            hashes += 1;
        }
        match self.peek(prefix + hashes) {
            Some(b'"') => {
                for _ in 0..prefix + hashes + 1 {
                    self.bump();
                }
                self.raw_string_body(hashes);
                self.push(TokKind::StrLike, start, line);
                true
            }
            Some(c) if prefix == 1 && hashes == 1 && is_ident_start(c) => {
                // Raw identifier r#ident.
                self.bump();
                self.bump();
                while matches!(self.peek(0), Some(x) if is_ident_char(x)) {
                    self.bump();
                }
                self.push(TokKind::Ident, start, line);
                true
            }
            _ => false,
        }
    }

    /// Consumes an escaped string body after the opening quote, including
    /// the closing quote.
    fn string_body(&mut self) {
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
    }

    fn raw_string_body(&mut self, hashes: usize) {
        loop {
            match self.bump() {
                None => break,
                Some(b'"') => {
                    let mut n = 0;
                    while n < hashes && self.peek(0) == Some(b'#') {
                        self.bump();
                        n += 1;
                    }
                    if n == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
    }

    fn string(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.bump();
        self.string_body();
        self.push(TokKind::StrLike, start, line);
    }

    /// Consumes a char-literal body after the opening quote, including the
    /// closing quote.
    fn char_body(&mut self) {
        if self.peek(0) == Some(b'\\') {
            // The escape head may itself be a quote (`'\''`) — consume the
            // backslash and one byte unconditionally, then fall through to
            // the quote scan so multi-byte escapes (`\x41`, `\u{10FFFF}`)
            // stay inside the literal instead of leaking as tokens.
            self.bump();
            self.bump();
        }
        // A char may be multi-byte UTF-8 (or a multi-byte escape payload);
        // consume until the closing quote.
        while matches!(self.peek(0), Some(c) if c != b'\'' && c != b'\n') {
            self.bump();
        }
        if self.peek(0) == Some(b'\'') {
            self.bump();
        }
    }

    fn char_or_lifetime(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.bump(); // the quote
        match self.peek(0) {
            Some(b'\\') => {
                self.char_body();
                self.push(TokKind::StrLike, start, line);
            }
            Some(c) if is_ident_start(c) => {
                // 'a' is a char; 'a (no closing quote right after the
                // ident run) is a lifetime.
                let mut n = 1;
                while matches!(self.peek(n), Some(x) if is_ident_char(x)) {
                    n += 1;
                }
                if self.peek(n) == Some(b'\'') {
                    self.char_body();
                    self.push(TokKind::StrLike, start, line);
                } else {
                    for _ in 0..n {
                        self.bump();
                    }
                    self.push(TokKind::Lifetime, start, line);
                }
            }
            _ => {
                self.char_body();
                self.push(TokKind::StrLike, start, line);
            }
        }
    }

    fn number(&mut self, start: usize, line: u32) {
        let mut float = false;
        // Hex/octal/binary prefixes never start a float.
        let radix_prefix = self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'));
        while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            let c = self.peek(0).unwrap_or(0);
            if !radix_prefix && (c == b'e' || c == b'E') && matches!(self.peek(1), Some(d) if d.is_ascii_digit() || d == b'+' || d == b'-') {
                float = true;
                self.bump();
                self.bump();
                continue;
            }
            self.bump();
        }
        // A dot followed by a digit continues the float; `0..n` does not.
        if self.peek(0) == Some(b'.') && matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
            float = true;
            self.bump();
            while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                self.bump();
            }
        }
        if !radix_prefix {
            if let Some(text) = self.text.get(start..self.pos) {
                if text.ends_with("f32") || text.ends_with("f64") {
                    float = true;
                }
            }
        }
        self.push(TokKind::Num { float }, start, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).tokens.iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let l = lex("let x = y.unwrap();");
        let texts: Vec<&str> = (0..l.tokens.len()).map(|i| l.text("let x = y.unwrap();", i)).collect();
        assert_eq!(texts, vec!["let", "x", "=", "y", ".", "unwrap", "(", ")", ";"]);
    }

    #[test]
    fn comments_are_skipped_but_allows_harvested() {
        let src = "a // lint:allow(panic)\nb /* lint:allow(hash-iter) */ c";
        let l = lex(src);
        assert_eq!(l.tokens.len(), 3);
        assert_eq!(l.allows.len(), 2);
        assert!(l.allowed(1, "panic"));
        assert!(l.allowed(2, "panic"), "directive covers the following line");
        assert!(!l.allowed(3, "panic"));
        assert!(l.allowed(2, "hash-iter"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"f("x.unwrap() // not a comment", 'y', "\"q\"")"#;
        let l = lex(src);
        let strlike = l.tokens.iter().filter(|t| t.kind == TokKind::StrLike).count();
        assert_eq!(strlike, 3);
        // No ident token named unwrap leaked out of the string.
        assert!(!(0..l.tokens.len()).any(|i| l.text(src, i) == "unwrap"));
    }

    #[test]
    fn raw_and_byte_strings() {
        let src = r###"let a = r#"has "quotes" and ] inside"#; let b = b"bytes"; let c = br#"raw"#;"###;
        let l = lex(src);
        let strlike = l.tokens.iter().filter(|t| t.kind == TokKind::StrLike).count();
        assert_eq!(strlike, 3, "{:?}", l.tokens);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let src = "fn f<'a>(x: &'a str) { let c = 'z'; let d = '\\n'; let e = b' '; }";
        let l = lex(src);
        let lifetimes = l.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = l.tokens.iter().filter(|t| t.kind == TokKind::StrLike).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 3);
    }

    #[test]
    fn numbers_and_floats() {
        let l = lex("1 2.5 1e9 0x58544B01 3f32 0..n 7u64");
        let floats: Vec<bool> = l
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Num { float } => Some(float),
                _ => None,
            })
            .collect();
        assert_eq!(floats, vec![false, true, true, false, true, false, false]);
        // The range `0..n` produced an Op2 and an ident.
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Op2([b'.', b'.'])));
    }

    #[test]
    fn two_char_operators() {
        let k = kinds("a == b != c -> d => e :: f");
        assert!(k.contains(&TokKind::Op2([b'=', b'='])));
        assert!(k.contains(&TokKind::Op2([b'!', b'='])));
        assert!(k.contains(&TokKind::Op2([b'-', b'>'])));
        assert!(k.contains(&TokKind::Op2([b'=', b'>'])));
        assert!(k.contains(&TokKind::Op2([b':', b':'])));
    }

    #[test]
    fn line_numbers_advance() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* x /* y */ z */ b");
        assert_eq!(l.tokens.len(), 2);
    }

    #[test]
    fn deeply_nested_block_comments() {
        // Depth changes interleaved with near-miss `*/` and `/*` runs.
        let l = lex("a /* 1 /* 2 /* 3 */ 2 */ 1 */ b\nc /*/ still open */ d");
        let texts: Vec<TokKind> = kinds("a b c d");
        assert_eq!(l.tokens.iter().map(|t| t.kind).collect::<Vec<_>>(), texts);
        // Line numbers keep advancing inside multi-line comments.
        let l = lex("/* line1\nline2\nline3 */ x");
        assert_eq!(l.tokens.first().map(|t| t.line), Some(3));
    }

    #[test]
    fn raw_strings_with_many_hashes() {
        // The closing delimiter must match the exact hash count; shorter
        // runs inside the body do not terminate the literal.
        let src = r####"let a = r##"body with "# and "quotes" inside"##;"####;
        let l = lex(src);
        let strs: Vec<&str> =
            (0..l.tokens.len()).filter(|&i| l.tokens[i].kind == TokKind::StrLike).map(|i| l.text(src, i)).collect();
        assert_eq!(strs, vec![r####"r##"body with "# and "quotes" inside"##"####]);
        // A raw string never processes backslash escapes: `\` before the
        // closing delimiter must not extend the literal.
        let src2 = r##"r#"ends in backslash\"# + x"##;
        let l2 = lex(src2);
        assert!((0..l2.tokens.len()).any(|i| l2.text(src2, i) == "x"), "{:?}", l2.tokens);
        // Extra hashes after the close are ordinary punctuation.
        let src3 = r###"r#"a"## b"###;
        let l3 = lex(src3);
        assert!((0..l3.tokens.len()).any(|i| l3.text(src3, i) == "b"));
        assert!(l3.tokens.iter().any(|t| t.kind == TokKind::Punct(b'#')));
    }

    #[test]
    fn byte_and_char_literals_with_escapes() {
        // `b'\x00'` and `'\u{1F600}'` are single literals; the escape
        // payload must not leak out as number/brace tokens.
        for src in ["b'\\x00'", "'\\x7f'", "'\\u{1F600}'", "b'\\''", "'\\\\'"] {
            let l = lex(src);
            assert_eq!(l.tokens.len(), 1, "{src:?} -> {:?}", l.tokens);
            assert_eq!(l.tokens.first().map(|t| t.kind), Some(TokKind::StrLike), "{src:?}");
        }
        // Mixed into an expression: the following tokens survive intact.
        let src = "f(b'\\x1b', '\\u{41}', q)";
        let l = lex(src);
        let texts: Vec<&str> = (0..l.tokens.len()).map(|i| l.text(src, i)).collect();
        assert!(texts.contains(&"q"), "{texts:?}");
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::StrLike).count(), 2);
        // Byte strings with escaped quotes and hex escapes stay one token.
        let src2 = r#"g(b"a\"b\x00", h)"#;
        let l2 = lex(src2);
        assert_eq!(l2.tokens.iter().filter(|t| t.kind == TokKind::StrLike).count(), 1);
        assert!((0..l2.tokens.len()).any(|i| l2.text(src2, i) == "h"));
    }

    #[test]
    fn allow_with_reason() {
        let src = "// lint:allow(L8, scratch reused across rounds)\nx\n// lint:allow(panic)\ny";
        let l = lex(src);
        assert!(l.allowed(2, "L8"));
        let a = l.allow_for(2, "L8").expect("directive");
        assert_eq!(a.reason.as_deref(), Some("scratch reused across rounds"));
        assert!(l.allow_for(4, "panic").is_some_and(|a| a.reason.is_none()));
        // Empty reason after a comma is treated as no reason.
        let l2 = lex("// lint:allow(L8, )\nz");
        assert!(l2.allow_for(2, "L8").is_some_and(|a| a.reason.is_none()));
    }

    #[test]
    fn broken_input_never_loops() {
        // Unterminated constructs must still terminate the lexer.
        for src in ["\"unterminated", "r#\"unterminated", "/* unterminated", "'"] {
            let _ = lex(src);
        }
    }
}
