// Fixture: hash-order leakage in a query-execution module — iteration
// order flows straight into the output vector.  Expected: one `hash-iter`
// hard finding.

use std::collections::HashMap;

pub fn leak_order(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for (key, _) in m.iter() {
        out.push(*key);
    }
    out
}
