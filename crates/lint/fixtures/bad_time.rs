// Fixture: wall-clock time inside a query-execution module.  Expected:
// `time` hard finding(s).

pub fn elapsed_ms(work: impl FnOnce()) -> u128 {
    let t = std::time::Instant::now();
    work();
    t.elapsed().as_millis()
}
