//! Fixture: a well-formed crate root.  Expected: no findings.
#![forbid(unsafe_code)]

pub fn nothing() {}
