// Fixture: hash iteration made deterministic — sorted before use, or
// consumed by an order-independent aggregate.  Expected: no findings.

use std::collections::{HashMap, HashSet};

pub fn ordered_keys(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys
}

pub fn total(m: &HashMap<u32, u32>) -> u64 {
    m.values().map(|&v| v as u64).sum()
}

pub fn cardinality(s: &HashSet<u32>) -> usize {
    s.iter().count()
}
