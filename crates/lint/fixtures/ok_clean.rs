// Fixture: clean library code — fallible accessors, test-only unwraps,
// and an annotated index.  Expected counts: 0 panic sites, 0 indexing
// sites.

/// Callers may write `f(&v).unwrap()` — doc mentions are not findings.
pub fn f(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

pub fn g(v: &[u32]) -> u32 {
    debug_assert!(!v.is_empty());
    // lint:allow(index) bounds established by every caller
    v[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_f() {
        let v = [1u32, 2, 3];
        assert_eq!(super::f(&v).unwrap(), v[0]);
    }
}
