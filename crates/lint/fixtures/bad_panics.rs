// Fixture: library code riddled with L1 violations.  Never compiled;
// read by tests/fixtures.rs.  Expected counts: 4 panic sites, 1 indexing
// site.

pub fn worst(v: &[u32], o: Option<u32>) -> u32 {
    let a = o.unwrap();
    let b = o.expect("present");
    if v.is_empty() {
        panic!("empty input");
    }
    let c = v[0];
    if a + b + c > 100 {
        todo!()
    }
    a + b + c
}
