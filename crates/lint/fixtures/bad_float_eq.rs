// Fixture: float equality in a query-execution module.  Expected:
// `float-eq` hard finding.

pub fn score_is_half(score: f32) -> bool {
    score == 0.5
}
