//! Fixture: a crate root whose `#![forbid(unsafe_code)]` was removed.
//! Expected: `forbid-unsafe` hard finding.

pub fn nothing() {}
