//! Property-based tests for the physical index layer: columnar invariants
//! on random trees, codec round-trips on random run shapes, sparse-index
//! consistency, and builder/posting invariants.
//!
//! Runs on the in-tree [`testutil`](xtk_xml::testutil) runner.

use xtk_index::codec::{
    choose_scheme, decode_column, encode_column, encode_column_packed, Scheme,
};
use xtk_index::columnar::{Column, Run};
use xtk_index::sparse::SparseIndex;
use xtk_index::XmlIndex;
use xtk_xml::testutil::{prop_check, Gen};
use xtk_xml::tree::{NodeId, XmlTree};
use xtk_xml::{prop_assert, prop_assert_eq};

/// Builds a random pre-order tree with random text placements.
fn build_tree(shape: &[usize], texts: &[(usize, u8)]) -> XmlTree {
    let n = shape.len() + 1;
    let mut parents = vec![usize::MAX; n];
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &c) in shape.iter().enumerate() {
        let p = c % (i + 1);
        parents[i + 1] = p;
        children[p].push(i + 1);
    }
    let mut tree = XmlTree::with_capacity(n);
    let mut map = vec![NodeId(0); n];
    map[0] = tree.add_root("n0");
    let mut stack: Vec<usize> = children[0].iter().rev().copied().collect();
    while let Some(v) = stack.pop() {
        map[v] = tree.add_child(map[parents[v]], format!("n{v}"));
        for &c in children[v].iter().rev() {
            stack.push(c);
        }
    }
    for &(node, word) in texts {
        tree.append_text(map[node % n], &format!("t{}", word % 6));
    }
    tree
}

/// Random parent-choice vector of length in `[1, max)`, size-scaled.
fn shape(g: &mut Gen, max: usize) -> Vec<usize> {
    let cap = max.min(g.size() + 2).max(2);
    let n = g.gen_range(1..cap);
    (0..n).map(|_| g.gen_range(0..10_000usize)).collect()
}

/// Random text placements `(node, word)` of length in `[1, max)`.
fn placements(g: &mut Gen, max: usize, words: u8) -> Vec<(usize, u8)> {
    let cap = max.min(2 * g.size() + 2).max(2);
    let n = g.gen_range(1..cap);
    (0..n)
        .map(|_| (g.gen_range(0..10_000usize), g.gen_range(0..words as u32) as u8))
        .collect()
}

/// Random well-formed column: sorted distinct values, contiguous-or-gapped
/// rows.
fn random_column(g: &mut Gen) -> Column {
    let n = g.gen_range(0..200.min(2 * g.size() + 1));
    let mut runs = Vec::new();
    let mut value = 0u32;
    let mut row = 0u32;
    for _ in 0..n {
        value += g.gen_range(1..5000u32);
        row += g.gen_range(0..3u32); // gap = rows absent at this level
        let len = g.gen_range(1..20u32);
        runs.push(Run { value, start: row, len });
        row += len;
    }
    Column { runs }
}

#[test]
fn codec_roundtrip_both_schemes() {
    prop_check(0x31, 128, |g| {
        let col = random_column(g);
        let present: Vec<u32> = col.runs.iter().flat_map(|r| r.rows()).collect();
        for scheme in [Scheme::Delta, Scheme::Rle] {
            let cc = encode_column(&col, scheme);
            let back = decode_column(&cc, &present).expect("well-formed payload decodes");
            prop_assert_eq!(&back, &col, "{:?}", scheme);
        }
        // The adaptive choice also round-trips.
        let cc = encode_column(&col, choose_scheme(&col));
        prop_assert_eq!(decode_column(&cc, &present), Some(col));
    });
}

#[test]
fn packed_layout_roundtrips_and_matches_varint() {
    // Format v3: the bit-packed lanes must decode to exactly the varint
    // (v2) decode and the in-memory column, for both schemes, over random
    // columns with random present-row gaps.  The directory footers are
    // layout-invariant, so `find()` and Table I size accounting agree.
    prop_check(0x37, 128, |g| {
        let col = random_column(g);
        let present: Vec<u32> = col.runs.iter().flat_map(|r| r.rows()).collect();
        for scheme in [Scheme::Delta, Scheme::Rle] {
            let v2 = encode_column(&col, scheme);
            let v3 = encode_column_packed(&col, scheme);
            prop_assert_eq!(&v3.block_rows, &v2.block_rows, "{:?} footer rows", scheme);
            prop_assert_eq!(
                &v3.block_last_values,
                &v2.block_last_values,
                "{:?} footer last values",
                scheme
            );
            let back3 = decode_column(&v3, &present).expect("packed payload decodes");
            prop_assert_eq!(&back3, &col, "{:?} packed vs memory", scheme);
            prop_assert_eq!(
                decode_column(&v2, &present).as_ref(),
                Some(&back3),
                "{:?} varint vs packed",
                scheme
            );
        }
    });
}

#[test]
fn corrupted_packed_lanes_reject_without_panicking() {
    // Truncations and bit flips inside the packed lanes (width bytes,
    // entry counts, lane payloads) must produce `None` — or, when the
    // mutation keeps the block well-formed, a successful decode — and
    // never a panic.  The lanes are exact-length, so a truncated or
    // over-long lane is always detected.
    prop_check(0x38, 128, |g| {
        let col = random_column(g);
        let present: Vec<u32> = col.runs.iter().flat_map(|r| r.rows()).collect();
        let scheme = if g.gen_range(0..2u32) == 0 { Scheme::Delta } else { Scheme::Rle };
        let mut cc = encode_column_packed(&col, scheme);
        if cc.bytes.is_empty() {
            return; // empty column: nothing to corrupt
        }
        match g.gen_range(0..3u32) {
            0 => {
                // Truncate the payload at a random point.
                let cut = g.gen_range(0..cc.bytes.len());
                cc.bytes.truncate(cut);
            }
            1 => {
                // Flip bits somewhere in a lane or header byte.
                let pos = g.gen_range(0..cc.bytes.len());
                cc.bytes[pos] ^= 1 << g.gen_range(0..8u32);
            }
            _ => {
                // Overwrite a byte entirely (hits width bytes too).
                let pos = g.gen_range(0..cc.bytes.len());
                cc.bytes[pos] = g.gen_range(0..256u32) as u8;
            }
        }
        let decoded = decode_column(&cc, &present); // Some or None, never a panic
        if let Some(back) = decoded {
            // A lucky mutation must still yield a structurally sane column.
            for w in back.runs.windows(2) {
                prop_assert!(w[0].end() <= w[1].start, "rows must not overlap");
            }
        }
    });
}

#[test]
fn sparse_index_locates_every_value() {
    prop_check(0x32, 128, |g| {
        let col = random_column(g);
        let cc = encode_column(&col, Scheme::Delta);
        let sx = SparseIndex::build(&cc);
        prop_assert_eq!(sx.len(), cc.block_count());
        for run in &col.runs {
            let b = sx.block_for(run.value);
            prop_assert!(b.is_some(), "value {} must map to a block", run.value);
            let b = b.unwrap();
            prop_assert!(cc.block_first_values[b] <= run.value);
            if b + 1 < sx.len() {
                prop_assert!(cc.block_first_values[b + 1] > run.value);
            }
        }
    });
}

#[test]
fn columns_are_sorted_with_contiguous_runs() {
    prop_check(0x33, 128, |g| {
        let shape = shape(g, 80);
        let texts = placements(g, 120, 6);
        let ix = XmlIndex::build(build_tree(&shape, &texts));
        for (_, term) in ix.terms() {
            // Postings sorted (doc order).
            prop_assert!(term.postings.windows(2).all(|w| w[0] < w[1]));
            for (li, col) in term.columns.iter().enumerate() {
                let level = (li + 1) as u16;
                // Values strictly increase; rows never overlap.
                for w in col.runs.windows(2) {
                    prop_assert!(w[0].value < w[1].value, "level {level}");
                    prop_assert!(w[0].end() <= w[1].start, "level {level}");
                }
                // Row count equals postings at >= level.
                let expect = term
                    .postings
                    .iter()
                    .filter(|&&n| ix.tree().depth(n) >= level)
                    .count() as u64;
                prop_assert_eq!(col.row_count(), expect);
                // Every run's value resolves to a node at this level, and
                // all rows in the run are descendants-or-self of it.
                for run in &col.runs {
                    let node = ix.node_at(level, run.value).expect("value resolves");
                    for row in run.rows() {
                        let p = term.postings[row as usize];
                        prop_assert!(
                            ix.tree().is_ancestor_or_self(node, p),
                            "level {level} run {} row {row}",
                            run.value
                        );
                    }
                }
            }
        }
    });
}

#[test]
fn run_containment_across_adjacent_levels() {
    prop_check(0x34, 128, |g| {
        // §III-E: a run at level l is contained in exactly one run at
        // level l-1 (never partially overlapping).
        let shape = shape(g, 80);
        let texts = placements(g, 100, 4);
        let ix = XmlIndex::build(build_tree(&shape, &texts));
        for (_, term) in ix.terms() {
            for l in 2..=term.columns.len() {
                let upper = &term.columns[l - 2];
                let lower = &term.columns[l - 1];
                for lr in &lower.runs {
                    let covering: Vec<&Run> = upper
                        .runs
                        .iter()
                        .filter(|ur| ur.start <= lr.start && lr.end() <= ur.end())
                        .collect();
                    prop_assert_eq!(
                        covering.len(),
                        1,
                        "lower run {:?} at level {} not covered exactly once",
                        lr,
                        l
                    );
                    // And nothing partially overlaps.
                    for ur in &upper.runs {
                        let overlap = ur.start < lr.end() && lr.start < ur.end();
                        let contains = ur.start <= lr.start && lr.end() <= ur.end();
                        prop_assert!(!overlap || contains);
                    }
                }
            }
        }
    });
}

#[test]
fn segments_partition_rows_in_score_order() {
    prop_check(0x35, 128, |g| {
        let shape = shape(g, 60);
        let texts = placements(g, 100, 4);
        let ix = XmlIndex::build(build_tree(&shape, &texts));
        for (_, term) in ix.terms() {
            let mut seen = vec![false; term.len()];
            for seg in &term.segments {
                let mut prev = f32::INFINITY;
                for &row in &seg.rows {
                    prop_assert!(!seen[row as usize], "row in two segments");
                    seen[row as usize] = true;
                    let depth = ix.tree().depth(term.postings[row as usize]);
                    prop_assert_eq!(depth, seg.len, "segment groups one depth");
                    let g = term.scores[row as usize];
                    prop_assert!(g <= prev, "segment rows sorted by score desc");
                    prev = g;
                }
                prop_assert!((seg.max_score
                    - term.scores[seg.rows[0] as usize]).abs() < 1e-6);
            }
            prop_assert!(seen.iter().all(|&s| s), "segments cover all rows");
        }
    });
}

#[test]
fn value_of_row_agrees_with_runs() {
    prop_check(0x36, 128, |g| {
        let col = random_column(g);
        for run in &col.runs {
            for row in run.rows() {
                prop_assert_eq!(col.value_of_row(row), Some(run.value));
            }
        }
        // A row beyond all runs is absent.
        let end = col.runs.last().map(|r| r.end()).unwrap_or(0);
        prop_assert_eq!(col.value_of_row(end), None);
    });
}
