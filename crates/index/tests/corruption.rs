//! Failure injection for the on-disk index format: truncations and random
//! byte mutations of a valid file must produce a clean `InvalidData`
//! error or — when the mutation happens to keep the file well-formed — a
//! successful parse.  Never a panic.

use xtk_index::disk::{read_index, write_index, FormatVersion, WriteIndexOptions};
use xtk_index::diskcol::DiskColumnStore;
use xtk_index::XmlIndex;
use xtk_xml::parse;
use xtk_xml::testutil::prop_check;
use xtk_xml::prop_assert_eq;

/// Both lazily-decoded formats: varint (v2) and bit-packed (v3) block
/// payloads.  Every injection below runs against each, so truncated and
/// bit-flipped packed lanes get the same coverage as varint payloads.
const FORMATS: [FormatVersion; 2] = [FormatVersion::V2, FormatVersion::V3];

fn valid_index_bytes(format: FormatVersion) -> Vec<u8> {
    let mut xml = String::from("<r>");
    for i in 0..120 {
        xml.push_str(&format!("<p><t>alpha beta{} gamma</t></p>", i % 11));
    }
    xml.push_str("</r>");
    let ix = XmlIndex::build(parse(&xml).unwrap());
    let path = std::env::temp_dir().join(format!(
        "xtk_corrupt_base_{:?}_{}.bin",
        format,
        std::process::id()
    ));
    write_index(&ix, &path, WriteIndexOptions { include_scores: true, format }).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

fn write_temp(bytes: &[u8], tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "xtk_corrupt_{}_{}_{}.bin",
        std::process::id(),
        tag,
        bytes.len()
    ));
    std::fs::write(&path, bytes).unwrap();
    path
}

#[test]
fn every_truncation_point_is_handled() {
    for format in FORMATS {
        let bytes = valid_index_bytes(format);
        // Truncating at every prefix is O(n^2) in file size; sample
        // prefixes densely at the start (header/directory) and sparsely
        // later.
        let mut cuts: Vec<usize> = (0..bytes.len().min(200)).collect();
        cuts.extend((200..bytes.len()).step_by(97));
        for cut in cuts {
            let path = write_temp(&bytes[..cut], "trunc");
            // Must not panic; Err expected for almost every cut.
            let _ = read_index(&path);
            let _ = DiskColumnStore::open(&path);
            std::fs::remove_file(&path).ok();
        }
    }
}

#[test]
fn random_mutations_never_panic() {
    prop_check(0x41, 48, |g| {
        let format = FORMATS[g.gen_range(0..FORMATS.len())];
        let n_flips = g.gen_range(1..8usize);
        let flips: Vec<(usize, u8)> = (0..n_flips)
            .map(|_| (g.gen_range(0..1_000_000usize), g.gen_range(0..256u32) as u8))
            .collect();
        let mut bytes = valid_index_bytes(format);
        for (pos, val) in flips {
            let n = bytes.len();
            bytes[pos % n] = val;
        }
        let path = write_temp(&bytes, "flip");
        match read_index(&path) {
            Ok(loaded) => {
                // A lucky mutation may still be well-formed; walking the
                // terms must at least not panic.
                for (term, t) in &loaded.terms {
                    let _ = (term.len(), t.depths.len());
                }
            }
            Err(e) => {
                prop_assert_eq!(e.kind(), std::io::ErrorKind::InvalidData, "{}", e);
            }
        }
        let _ = DiskColumnStore::open(&path);
        std::fs::remove_file(&path).ok();
    });
}

#[test]
fn mutated_store_scan_and_find_never_panic() {
    // The block-granular reader defers payload decoding to `scan`/`find`,
    // so a mutation the directory pass misses must surface there — as an
    // `Err` (or a well-formed `Ok`), never a panic.  Mutations are aimed
    // past the directory to stress the lazy decode paths.
    prop_check(0x42, 32, |g| {
        let format = FORMATS[g.gen_range(0..FORMATS.len())];
        let n_flips = g.gen_range(1..6usize);
        let flips: Vec<(usize, u8)> = (0..n_flips)
            .map(|_| (g.gen_range(0..1_000_000usize), g.gen_range(0..256u32) as u8))
            .collect();
        let mut bytes = valid_index_bytes(format);
        let n = bytes.len();
        for (pos, val) in flips {
            // Skip the first ~64 bytes so the open() usually succeeds and
            // the decode paths actually run.
            bytes[64 + pos % (n - 64)] = val;
        }
        let path = write_temp(&bytes, "scanflip");
        if let Ok(store) = DiskColumnStore::open(&path) {
            for term in store.term_names() {
                for level in 1..=store.levels_of(term) {
                    let Some(col) = store.column(term, level) else { continue };
                    let _ = col.scan(); // Ok or Err, never a panic
                    let _ = col.find(0);
                    let _ = col.find(u32::MAX);
                }
            }
        }
        std::fs::remove_file(&path).ok();
    });
}

#[test]
fn empty_and_garbage_files_rejected() {
    for content in [&b""[..], &b"\x00"[..], &b"garbage not an index"[..]] {
        let path = write_temp(content, "garbage");
        assert!(read_index(&path).is_err());
        assert!(DiskColumnStore::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
