//! Shared block cache for the disk-resident column store.
//!
//! The paper's experiments run in a *hot cache* regime: every block a
//! query touches is decoded once and then served from memory.  The
//! original [`DiskColumnStore`](crate::diskcol::DiskColumnStore)
//! emulated that with an unbounded per-store `HashMap`, which has two
//! problems once queries run concurrently on the work-stealing pool:
//! the map is not thread-safe (so a store could not be shared at all)
//! and it never evicts (so a long-running server's memory grows with
//! the set of blocks ever touched, not the working set).
//!
//! [`BlockCache`] abstracts the policy behind a thread-safe trait so
//! executors can share one cache across stores and workers:
//!
//! * [`ShardedLruCache`] — the production policy: N mutex-protected
//!   shards (keyed by block offset, so contention spreads), each an LRU
//!   over decoded blocks, bounded by a block count or an approximate
//!   byte budget.  Hits, misses and evictions are counted with atomics.
//! * [`ShardedLruCache::unbounded`] — the paper-fidelity setting: same
//!   structure, no eviction; what the experiments of §V assume.
//!
//! Recency is tracked with a per-shard logical counter (never wall
//! clock — eviction order must be deterministic for the bench gate and
//! identical across runs).  Correctness never depends on the policy:
//! a block decodes to the same runs no matter when it was evicted, so
//! query results are bit-identical under every capacity, which the
//! differential tests assert.

use crate::columnar::Run;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use xtk_obs::MetricsRegistry;

/// A decoded, immutable block: shared instead of cloned on every hit.
pub type Block = Arc<[Run]>;

/// Approximate resident size of a decoded block, used by byte-bounded
/// capacities.
///
/// A cached block is an `Arc<[Run]>`, so its true resident footprint is
/// the `Arc` allocation header (strong + weak counts, one `usize` each)
/// plus the run payload, plus a flat allowance for the cache's own
/// bookkeeping (map entry, recency node).  Pinned by a unit test so
/// byte-bounded capacities stay meaningful as the block representation
/// evolves.
pub fn block_bytes(runs: &[Run]) -> usize {
    2 * std::mem::size_of::<usize>() + std::mem::size_of_val(runs) + 64
}

/// Cache observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required a decode.
    pub misses: u64,
    /// Blocks evicted to stay within capacity.
    pub evictions: u64,
    /// Blocks currently resident.
    pub resident_blocks: u64,
    /// Approximate bytes currently resident (see [`block_bytes`]).
    pub resident_bytes: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Publishes the counters into a shared [`MetricsRegistry`] under the
    /// `cache.*` names (add-semantics: publish into a fresh registry for
    /// absolute values, or repeatedly for running totals).
    pub fn publish(&self, metrics: &MetricsRegistry) {
        metrics.add("cache.hits", self.hits);
        metrics.add("cache.misses", self.misses);
        metrics.add("cache.evictions", self.evictions);
        metrics.add("cache.resident_blocks", self.resident_blocks);
        metrics.add("cache.resident_bytes", self.resident_bytes);
    }
}

/// A thread-safe cache of decoded blocks, keyed by absolute file offset
/// (block payloads are immutable once written, so the offset identifies
/// the content).
///
/// Implementations must be shareable across the work-stealing pool:
/// `get`/`insert` take `&self` and synchronize internally.
pub trait BlockCache: Send + Sync + std::fmt::Debug {
    /// Looks a block up, recording a hit or miss.
    fn get(&self, key: u64) -> Option<Block>;
    /// Looks a block up **without** recording a hit or miss.  Used for
    /// the double-checked lookup under the decode lock, so one logical
    /// access never counts twice (the per-store-snapshot double-count
    /// fixed in PR 4).  Recency may still be refreshed.
    fn peek(&self, key: u64) -> Option<Block> {
        self.get(key)
    }
    /// Inserts a decoded block, evicting as needed.
    fn insert(&self, key: u64, block: Block);
    /// Counters so far.
    fn stats(&self) -> CacheStats;
    /// Pins a **resident** block: pinned blocks are never chosen as
    /// eviction victims until every pin is released.  Returns `true` when
    /// the block was resident and is now pinned, `false` when absent (the
    /// caller should decode + insert, then retry).  Pins nest: each `pin`
    /// needs a matching [`BlockCache::unpin`].  Policies that cannot pin
    /// (the default) report `false` — warming still helps, it is just not
    /// guaranteed to survive eviction.
    fn pin(&self, key: u64) -> bool {
        let _ = key;
        false
    }
    /// Releases one pin on `key`; a no-op when the block is not pinned.
    fn unpin(&self, key: u64) {
        let _ = key;
    }
    /// Number of distinct blocks currently pinned.
    fn pinned_blocks(&self) -> u64 {
        0
    }
}

/// Capacity policy for [`ShardedLruCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheCapacity {
    /// Never evict (the paper's hot-cache regime).
    Unbounded,
    /// At most this many resident blocks (summed over shards).
    Blocks(usize),
    /// At most approximately this many resident bytes (see
    /// [`block_bytes`]; summed over shards).
    Bytes(usize),
}

/// Default bounded capacity: 4096 blocks ≈ 16 MiB of 4 KiB payloads
/// before decode expansion — enough to keep a realistic working set hot
/// while bounding a long-lived server.
pub const DEFAULT_CAPACITY_BLOCKS: usize = 4096;

#[derive(Debug, Default)]
struct Shard {
    /// `key -> (block, recency stamp)`.
    map: HashMap<u64, (Block, u64)>,
    /// `recency stamp -> key`; the first entry is the LRU victim.
    lru: BTreeMap<u64, u64>,
    /// Monotone logical clock (per shard — stamps never cross shards).
    clock: u64,
    /// Approximate resident bytes in this shard.
    bytes: usize,
    /// `key -> pin count`; pinned keys are skipped by eviction.
    pins: HashMap<u64, u32>,
}

impl Shard {
    fn touch(&mut self, key: u64) {
        if let Some((_, stamp)) = self.map.get(&key) {
            let old = *stamp;
            self.clock += 1;
            let now = self.clock;
            self.lru.remove(&old);
            self.lru.insert(now, key);
            if let Some((_, stamp)) = self.map.get_mut(&key) {
                *stamp = now;
            }
        }
    }
}

/// The bounded, sharded LRU block cache (see module docs).
#[derive(Debug)]
pub struct ShardedLruCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard capacity slice (`None` = unbounded).
    cap_blocks: Option<usize>,
    cap_bytes: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Recovers the guard from a poisoned mutex: shard state is a plain
/// key→block map whose invariants hold between statements, so a panic
/// on another thread (already propagated by the pool) cannot leave it
/// logically corrupt — serving cached blocks remains sound.
fn lock_shard<'a>(m: &'a Mutex<Shard>) -> MutexGuard<'a, Shard> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl ShardedLruCache {
    /// Maximum shard count; small capacities get fewer shards so the
    /// per-shard budget never rounds below one block.
    const MAX_SHARDS: usize = 8;

    fn with_shards(capacity: CacheCapacity, shards: usize) -> Self {
        let shards = shards.max(1);
        let (cap_blocks, cap_bytes) = match capacity {
            CacheCapacity::Unbounded => (None, None),
            // Ceiling division: the summed budget is >= the requested
            // capacity and every shard can hold at least one block.
            CacheCapacity::Blocks(n) => (Some(n.max(1).div_ceil(shards)), None),
            CacheCapacity::Bytes(n) => (None, Some(n.div_ceil(shards).max(1))),
        };
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            cap_blocks,
            cap_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cache with the given capacity policy.
    pub fn new(capacity: CacheCapacity) -> Self {
        let shards = match capacity {
            // One shard per capacity block up to the cap, so `Blocks(1)`
            // really holds one block in total.
            CacheCapacity::Blocks(n) => n.clamp(1, Self::MAX_SHARDS),
            _ => Self::MAX_SHARDS,
        };
        Self::with_shards(capacity, shards)
    }

    /// The paper-fidelity hot cache: never evicts.
    pub fn unbounded() -> Self {
        Self::new(CacheCapacity::Unbounded)
    }

    /// Bounded by resident block count.
    pub fn with_block_capacity(blocks: usize) -> Self {
        Self::new(CacheCapacity::Blocks(blocks))
    }

    /// Bounded by approximate resident bytes.
    pub fn with_byte_capacity(bytes: usize) -> Self {
        Self::new(CacheCapacity::Bytes(bytes))
    }

    fn shard_for(&self, key: u64) -> &Mutex<Shard> {
        // Blocks are ~4 KiB apart, so mix the offset before sharding.
        let mut h = key ^ 0x9E37_79B9_7F4A_7C15;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        let i = (h as usize).checked_rem(self.shards.len()).unwrap_or(0);
        // Index is in range by construction; fall back to the first
        // shard rather than panicking if the modulus were ever wrong.
        self.shards.get(i).unwrap_or_else(|| &self.shards[0]) // lint:allow(index)
    }

    fn evict_over_budget(&self, shard: &mut Shard) {
        loop {
            let over_blocks = self.cap_blocks.is_some_and(|c| shard.map.len() > c);
            let over_bytes =
                self.cap_bytes.is_some_and(|c| shard.bytes > c && shard.map.len() > 1);
            if !over_blocks && !over_bytes {
                return;
            }
            // Oldest *unpinned* entry; pinned blocks may transiently hold a
            // shard over budget, which is the point of pinning (a batch's
            // prefetched working set must survive its own execution).
            let victim = shard
                .lru
                .iter()
                .map(|(&stamp, &key)| (stamp, key))
                .find(|(_, key)| !shard.pins.contains_key(key));
            let Some((stamp, victim)) = victim else {
                return;
            };
            shard.lru.remove(&stamp);
            if let Some((block, _)) = shard.map.remove(&victim) {
                shard.bytes = shard.bytes.saturating_sub(block_bytes(&block));
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl BlockCache for ShardedLruCache {
    fn get(&self, key: u64) -> Option<Block> {
        let mut shard = lock_shard(self.shard_for(key));
        let hit = shard.map.get(&key).map(|(b, _)| b.clone());
        match hit {
            Some(block) => {
                shard.touch(key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(block)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn peek(&self, key: u64) -> Option<Block> {
        let mut shard = lock_shard(self.shard_for(key));
        let hit = shard.map.get(&key).map(|(b, _)| b.clone());
        if hit.is_some() {
            shard.touch(key);
        }
        hit
    }

    fn insert(&self, key: u64, block: Block) {
        let mut shard = lock_shard(self.shard_for(key));
        if shard.map.contains_key(&key) {
            // Concurrent decode of the same block: first insert wins,
            // the duplicate only refreshes recency.
            shard.touch(key);
            return;
        }
        shard.clock += 1;
        let now = shard.clock;
        shard.bytes += block_bytes(&block);
        shard.map.insert(key, (block, now));
        shard.lru.insert(now, key);
        self.evict_over_budget(&mut shard);
    }

    fn stats(&self) -> CacheStats {
        let mut resident_blocks = 0u64;
        let mut resident_bytes = 0u64;
        for m in &self.shards {
            let shard = lock_shard(m);
            resident_blocks += shard.map.len() as u64;
            resident_bytes += shard.bytes as u64;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_blocks,
            resident_bytes,
        }
    }

    fn pin(&self, key: u64) -> bool {
        let mut shard = lock_shard(self.shard_for(key));
        if !shard.map.contains_key(&key) {
            return false;
        }
        *shard.pins.entry(key).or_insert(0) += 1;
        shard.touch(key);
        true
    }

    fn unpin(&self, key: u64) {
        let mut shard = lock_shard(self.shard_for(key));
        if let Some(count) = shard.pins.get_mut(&key) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                shard.pins.remove(&key);
            }
        }
    }

    fn pinned_blocks(&self) -> u64 {
        self.shards.iter().map(|m| lock_shard(m).pins.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: usize, tag: u32) -> Block {
        (0..n as u32).map(|i| Run { value: tag + i, start: i, len: 1 }).collect()
    }

    #[test]
    fn hit_miss_and_counters() {
        let c = ShardedLruCache::unbounded();
        assert!(c.get(0).is_none());
        c.insert(0, block(3, 10));
        let got = c.get(0).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].value, 10);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.resident_blocks, 1);
        assert!(s.resident_bytes >= block_bytes(&got) as u64);
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn block_bytes_accounts_header_and_runs() {
        // A resident block is an Arc<[Run]>: two usize refcounts in the
        // allocation header, 12 bytes per run, plus the flat 64-byte
        // allowance for the cache's map + recency bookkeeping.  Pinned
        // exactly so byte-bounded capacities keep meaning what they say.
        let header = 2 * std::mem::size_of::<usize>();
        assert_eq!(std::mem::size_of::<Run>(), 12);
        assert_eq!(block_bytes(&[]), header + 64);
        let b = block(5, 0);
        assert_eq!(block_bytes(&b), header + 5 * 12 + 64);
        assert_eq!(block_bytes(&block(341, 0)), header + 341 * 12 + 64);
    }

    #[test]
    fn unbounded_never_evicts() {
        let c = ShardedLruCache::unbounded();
        for k in 0..1000u64 {
            c.insert(k * 4096, block(4, k as u32));
        }
        let s = c.stats();
        assert_eq!(s.resident_blocks, 1000);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn capacity_one_block_holds_exactly_one() {
        let c = ShardedLruCache::with_block_capacity(1);
        c.insert(0, block(2, 0));
        c.insert(4096, block(2, 1));
        c.insert(8192, block(2, 2));
        let s = c.stats();
        assert_eq!(s.resident_blocks, 1, "one shard, one block");
        assert_eq!(s.evictions, 2);
        // Only the most recent insert can be resident.
        assert!(c.get(8192).is_some());
        assert!(c.get(0).is_none());
        assert!(c.get(4096).is_none());
    }

    #[test]
    fn lru_order_respects_recent_access() {
        // Single shard so the LRU order is globally observable.
        let c = ShardedLruCache::with_shards(CacheCapacity::Blocks(2), 1);
        c.insert(1, block(1, 1));
        c.insert(2, block(1, 2));
        assert!(c.get(1).is_some(), "touch 1 so 2 becomes LRU");
        c.insert(3, block(1, 3));
        assert!(c.get(2).is_none(), "2 was least recently used");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn byte_capacity_bounds_resident_bytes() {
        let budget = 4 * block_bytes(&block(64, 0));
        let c = ShardedLruCache::with_shards(CacheCapacity::Bytes(budget), 1);
        for k in 0..32u64 {
            c.insert(k, block(64, k as u32));
        }
        let s = c.stats();
        assert!(s.resident_bytes <= budget as u64, "{} > {budget}", s.resident_bytes);
        assert!(s.evictions >= 28);
        assert!(s.resident_blocks >= 1, "always keeps the newest block");
    }

    #[test]
    fn shared_across_threads() {
        let c = Arc::new(ShardedLruCache::with_block_capacity(128));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for k in 0..256u64 {
                        let key = (k % 64) * 4096;
                        if c.get(key).is_none() {
                            c.insert(key, block(2, (t * 1000 + k) as u32));
                        }
                    }
                });
            }
        });
        let s = c.stats();
        assert!(s.hits > 0);
        assert!(s.resident_blocks <= 128);
    }

    #[test]
    fn peek_does_not_count_but_refreshes_recency() {
        let c = ShardedLruCache::with_shards(CacheCapacity::Blocks(2), 1);
        c.insert(1, block(1, 1));
        c.insert(2, block(1, 2));
        assert!(c.peek(1).is_some());
        assert!(c.peek(99).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (0, 0), "peek records nothing: {s:?}");
        // The peek still counted as an access: 2 is now the LRU victim.
        c.insert(3, block(1, 3));
        assert!(c.peek(2).is_none());
        assert!(c.peek(1).is_some());
    }

    #[test]
    fn publish_into_registry() {
        let c = ShardedLruCache::unbounded();
        c.insert(0, block(1, 0));
        assert!(c.get(0).is_some());
        assert!(c.get(4096).is_none());
        let reg = xtk_obs::MetricsRegistry::new();
        c.stats().publish(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.get("cache.hits"), 1);
        assert_eq!(snap.get("cache.misses"), 1);
        assert_eq!(snap.get("cache.resident_blocks"), 1);
    }

    #[test]
    fn pinned_blocks_survive_eviction_pressure() {
        // Single shard, two-block budget: pin one block, then flood.
        let c = ShardedLruCache::with_shards(CacheCapacity::Blocks(2), 1);
        c.insert(1, block(1, 1));
        assert!(c.pin(1), "resident block pins");
        assert!(!c.pin(99), "absent block does not pin");
        assert_eq!(c.pinned_blocks(), 1);
        for k in 2..10u64 {
            c.insert(k, block(1, k as u32));
        }
        assert!(c.peek(1).is_some(), "pinned block never evicted");
        c.unpin(1);
        assert_eq!(c.pinned_blocks(), 0);
        c.insert(100, block(1, 100));
        c.insert(101, block(1, 101));
        assert!(c.peek(1).is_none(), "unpinned block evicts normally");
    }

    #[test]
    fn pins_nest_and_unpin_is_idempotent_when_absent() {
        let c = ShardedLruCache::with_shards(CacheCapacity::Blocks(1), 1);
        c.insert(1, block(1, 1));
        assert!(c.pin(1));
        assert!(c.pin(1), "pins nest");
        c.unpin(1);
        assert_eq!(c.pinned_blocks(), 1, "one pin still held");
        c.insert(2, block(1, 2));
        assert!(c.peek(1).is_some());
        c.unpin(1);
        c.unpin(1); // extra unpin is a no-op
        assert_eq!(c.pinned_blocks(), 0);
        // All pins released: budget-1 shard keeps only the newest insert.
        c.insert(3, block(1, 3));
        assert!(c.peek(1).is_none());
    }

    #[test]
    fn all_pinned_shard_stops_evicting_without_spinning() {
        let c = ShardedLruCache::with_shards(CacheCapacity::Blocks(1), 1);
        c.insert(1, block(1, 1));
        assert!(c.pin(1));
        // Over budget, but the pinned resident is untouchable: the
        // unpinned newcomer is the only legal victim, and insert returns
        // promptly instead of spinning for room that cannot appear.
        c.insert(2, block(1, 2));
        assert!(c.peek(1).is_some(), "pinned block survives eviction");
        assert!(c.peek(2).is_none(), "newcomer was the only legal victim");
        assert_eq!(c.stats().resident_blocks, 1);
        // Once the pin drops, budget enforcement cycles normally again.
        c.unpin(1);
        c.insert(3, block(1, 3));
        assert!(c.peek(3).is_some());
        assert!(c.peek(1).is_none());
    }

    #[test]
    fn duplicate_insert_keeps_first_block() {
        let c = ShardedLruCache::unbounded();
        c.insert(7, block(2, 100));
        c.insert(7, block(5, 200));
        let got = c.get(7).unwrap();
        assert_eq!(got.len(), 2, "first insert wins");
        assert_eq!(c.stats().resident_blocks, 1);
    }
}
