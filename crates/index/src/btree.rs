//! A static B+-tree emulation with page-based storage.
//!
//! The index-based baseline ([8] in the paper) stores every `(keyword,
//! Dewey id)` pair as a key in a single BerkeleyDB B-tree, and RDIL builds
//! B-trees over each inverted list — both of which Table I shows to be far
//! larger than the columnar lists.  This module reproduces that physical
//! layout faithfully enough for size accounting *and* supports the lookups
//! the baselines perform: pages are 4 KiB, filled to the classic ~2/3
//! factor, keys are stored whole in the leaves (the BerkeleyDB behaviour
//! the paper calls out as the cause of the blow-up), and internal levels
//! store one separator key per child page.

/// Page size of the emulated B-tree.
pub const PAGE_SIZE: usize = 4096;

/// Leaf fill factor (BerkeleyDB-style ~2/3 occupancy).
pub const FILL_FACTOR: f64 = 0.67;

/// Per-entry overhead in a leaf: length prefixes + value pointer, matching
/// a (key, 8-byte data) BerkeleyDB record.
pub const ENTRY_OVERHEAD: usize = 12;

/// A static (bulk-loaded) B+-tree over byte-string keys with `u64` values.
#[derive(Debug, Clone)]
pub struct StaticBTree {
    /// Leaf entries: sorted `(key, value)` pairs, partitioned into pages.
    entries: Vec<(Vec<u8>, u64)>,
    /// Index of the first entry of each leaf page.
    page_starts: Vec<u32>,
    /// Separator key (first key) of each leaf page.
    separators: Vec<Vec<u8>>,
    /// Total emulated on-disk size in bytes.
    size_bytes: u64,
    /// Number of pages across all levels.
    page_count: u64,
}

impl StaticBTree {
    /// Bulk-loads the tree from **sorted** `(key, value)` entries.
    ///
    /// # Panics
    /// Panics (debug) if the entries are not sorted by key.
    pub fn build(entries: Vec<(Vec<u8>, u64)>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0), "entries must be sorted");
        let budget = (PAGE_SIZE as f64 * FILL_FACTOR) as usize;
        let mut page_starts = Vec::new();
        let mut separators = Vec::new();
        let mut used = usize::MAX; // force a new page on the first entry
        for (i, (key, _)) in entries.iter().enumerate() {
            let need = key.len() + ENTRY_OVERHEAD;
            if used.saturating_add(need) > budget {
                page_starts.push(i as u32);
                separators.push(key.clone());
                used = 0;
            }
            used += need;
        }
        let leaf_pages = page_starts.len() as u64;
        // Internal levels: one separator entry per child, same fill factor.
        let mut page_count = leaf_pages;
        let mut level_pages = leaf_pages;
        let mut sep_iter: Vec<usize> = separators.iter().map(|s| s.len()).collect();
        while level_pages > 1 {
            let mut pages_here = 0u64;
            let mut used = usize::MAX;
            let mut next_seps = Vec::new();
            for (i, &klen) in sep_iter.iter().enumerate() {
                let need = klen + ENTRY_OVERHEAD;
                if used.saturating_add(need) > budget {
                    pages_here += 1;
                    next_seps.push(klen);
                    used = 0;
                }
                used += need;
                let _ = i;
            }
            page_count += pages_here;
            level_pages = pages_here;
            sep_iter = next_seps;
            if pages_here <= 1 {
                break;
            }
        }
        let size_bytes = page_count * PAGE_SIZE as u64;
        Self { entries, page_starts, separators, size_bytes, page_count }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Emulated on-disk size (whole pages, all levels).
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Number of pages across all levels.
    pub fn page_count(&self) -> u64 {
        self.page_count
    }

    /// Exact-match lookup.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let i = self.entries.partition_point(|(k, _)| k.as_slice() < key);
        match self.entries.get(i) {
            Some((k, v)) if k.as_slice() == key => Some(*v),
            _ => None,
        }
    }

    /// Smallest entry with `key >= probe` (the `rm` search of the
    /// index-based algorithms), as `(key, value)`.
    pub fn ceiling(&self, probe: &[u8]) -> Option<(&[u8], u64)> {
        let i = self.entries.partition_point(|(k, _)| k.as_slice() < probe);
        self.entries.get(i).map(|(k, v)| (k.as_slice(), *v))
    }

    /// Largest entry with `key <= probe` (the `lm` search).
    pub fn floor(&self, probe: &[u8]) -> Option<(&[u8], u64)> {
        let i = self.entries.partition_point(|(k, _)| k.as_slice() <= probe);
        i.checked_sub(1).map(|i| {
            let (k, v) = &self.entries[i];
            (k.as_slice(), *v)
        })
    }

    /// Entries with keys in `[lo, hi)`.
    pub fn range(&self, lo: &[u8], hi: &[u8]) -> &[(Vec<u8>, u64)] {
        let a = self.entries.partition_point(|(k, _)| k.as_slice() < lo);
        let b = self.entries.partition_point(|(k, _)| k.as_slice() < hi);
        &self.entries[a..b]
    }

    /// The separators — exposed so tests can check the page layout.
    pub fn leaf_separators(&self) -> &[Vec<u8>] {
        &self.separators
    }

    /// Index of the leaf page a probe key would live in.
    pub fn page_of(&self, probe: &[u8]) -> Option<usize> {
        if self.page_starts.is_empty() {
            return None;
        }
        let idx = self.separators.partition_point(|s| s.as_slice() <= probe);
        Some(idx.saturating_sub(1))
    }
}

/// Computes the emulated size of a bulk-loaded B-tree from key lengths
/// alone, without materializing entries.  Returns `(pages, bytes)`.
///
/// Used by [`crate::sizes`] for the Table I accounting, where the
/// index-based baseline's tree would hold millions of `(keyword, Dewey)`
/// entries.
pub fn emulate_size(key_lens: impl Iterator<Item = usize>) -> (u64, u64) {
    let budget = (PAGE_SIZE as f64 * FILL_FACTOR) as usize;
    let mut leaf_pages = 0u64;
    let mut sep_lens: Vec<usize> = Vec::new();
    let mut used = usize::MAX;
    for klen in key_lens {
        let need = klen + ENTRY_OVERHEAD;
        if used.saturating_add(need) > budget {
            leaf_pages += 1;
            sep_lens.push(klen);
            used = 0;
        }
        used += need;
    }
    let mut page_count = leaf_pages;
    let mut level = sep_lens;
    while level.len() > 1 {
        let mut pages_here = 0u64;
        let mut used = usize::MAX;
        let mut next = Vec::new();
        for &klen in &level {
            let need = klen + ENTRY_OVERHEAD;
            if used.saturating_add(need) > budget {
                pages_here += 1;
                next.push(klen);
                used = 0;
            }
            used += need;
        }
        page_count += pages_here;
        level = next;
        if pages_here <= 1 {
            break;
        }
    }
    (page_count, page_count * PAGE_SIZE as u64)
}

/// Serializes a Dewey id the way the BerkeleyDB-backed implementation
/// does: one varint per component.
pub fn dewey_key_bytes(components: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(components.len() + 2);
    for &c in components {
        crate::codec::write_varint(c, &mut out);
    }
    out
}

/// Builds the `(keyword, Dewey)` composite key of the index-based
/// baseline's single B-tree.
pub fn composite_key(term: &str, dewey: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(term.len() + dewey.len() + 3);
    out.extend_from_slice(term.as_bytes());
    out.push(0);
    out.extend_from_slice(&dewey_key_bytes(dewey));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(n: u64) -> StaticBTree {
        let entries: Vec<(Vec<u8>, u64)> =
            (0..n).map(|i| (format!("key{i:08}").into_bytes(), i)).collect();
        StaticBTree::build(entries)
    }

    #[test]
    fn get_floor_ceiling() {
        let t = tree(1000);
        assert_eq!(t.get(b"key00000042"), Some(42));
        assert_eq!(t.get(b"keyXX"), None);
        let (k, v) = t.ceiling(b"key00000042x").unwrap();
        assert_eq!(v, 43);
        assert!(k > b"key00000042x".as_slice());
        let (_, v) = t.floor(b"key00000042x").unwrap();
        assert_eq!(v, 42);
        assert!(t.floor(b"a").is_none());
        assert!(t.ceiling(b"z").is_none());
    }

    #[test]
    fn range_scan() {
        let t = tree(100);
        let r = t.range(b"key00000010", b"key00000013");
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].1, 10);
    }

    #[test]
    fn size_grows_with_entries_and_key_length() {
        let small = tree(1000);
        let big = tree(10_000);
        assert!(big.size_bytes() > small.size_bytes());
        assert!(big.page_count() > small.page_count());
        // Size is whole pages.
        assert_eq!(big.size_bytes() % PAGE_SIZE as u64, 0);
        // Rough sanity: 10k entries * ~23B at 2/3 fill ~= 84 pages min.
        assert!(big.page_count() >= 84, "got {}", big.page_count());
    }

    #[test]
    fn page_of_locates_probe() {
        let t = tree(10_000);
        assert!(t.leaf_separators().len() > 1);
        let p = t.page_of(b"key00005000").unwrap();
        let sep = &t.leaf_separators()[p];
        assert!(sep.as_slice() <= b"key00005000".as_slice());
    }

    #[test]
    fn empty_tree() {
        let t = StaticBTree::build(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.size_bytes(), 0);
        assert_eq!(t.page_of(b"x"), None);
    }

    #[test]
    fn composite_keys_sort_by_term_then_dewey() {
        let a = composite_key("xml", &[0, 1, 2]);
        let b = composite_key("xml", &[0, 2]);
        let c = composite_key("zebra", &[0]);
        assert!(a < b, "same term: dewey order decides");
        assert!(b < c, "term order dominates");
    }
}
