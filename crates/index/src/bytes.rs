//! Owned-or-shared backing bytes for a persisted column file.
//!
//! The disk column store reads a column file once at open time and then
//! serves every cold block decode by *slicing* the resident bytes — no
//! seek, no per-block read, no intermediate copy between the file image
//! and the decoder ([`crate::codec::decode_block_into`] consumes the
//! slice directly).  `ColumnBytes` is the small abstraction that makes
//! the backing storage interchangeable:
//!
//! * [`ColumnBytes::Owned`] — the store holds the only copy (the common
//!   case: one store per opened file).
//! * [`ColumnBytes::Shared`] — several stores view one buffer (tests,
//!   shard replicas on one host, or a caller that already holds the file
//!   image and wants to open a store over it without copying).
//!
//! Both variants are immutable after construction, so handing out
//! `&[u8]` slices across threads is safe without locking; the store's
//! decode lock exists only to keep the decode-once cache discipline, not
//! to protect these bytes.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;
use std::sync::Arc;

/// Immutable backing bytes of a column file: exclusively owned or shared.
#[derive(Debug, Clone)]
pub enum ColumnBytes {
    /// Exclusively owned file image.
    Owned(Box<[u8]>),
    /// File image shared with other readers (cheap to clone).
    Shared(Arc<[u8]>),
}

impl ColumnBytes {
    /// Reads a whole file into an owned image.
    pub fn from_file(path: &Path) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        Ok(ColumnBytes::Owned(bytes.into_boxed_slice()))
    }

    /// The full file image.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            ColumnBytes::Owned(b) => b,
            ColumnBytes::Shared(b) => b,
        }
    }

    /// Total length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// A zero-copy view of `len` bytes starting at `start`: `None` when
    /// the range falls outside the image (corrupt directory entries must
    /// surface as errors, never a panic).
    pub fn slice(&self, start: u64, len: usize) -> Option<&[u8]> {
        let start = usize::try_from(start).ok()?;
        self.as_slice().get(start..start.checked_add(len)?)
    }
}

impl From<Vec<u8>> for ColumnBytes {
    fn from(bytes: Vec<u8>) -> Self {
        ColumnBytes::Owned(bytes.into_boxed_slice())
    }
}

impl From<Arc<[u8]>> for ColumnBytes {
    fn from(bytes: Arc<[u8]>) -> Self {
        ColumnBytes::Shared(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_bounds_are_checked() {
        let cb = ColumnBytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(cb.len(), 4);
        assert!(!cb.is_empty());
        assert_eq!(cb.slice(1, 2), Some(&[2u8, 3][..]));
        assert_eq!(cb.slice(0, 4), Some(&[1u8, 2, 3, 4][..]));
        assert_eq!(cb.slice(3, 2), None);
        assert_eq!(cb.slice(4, 1), None);
        assert_eq!(cb.slice(u64::MAX, 1), None);
        assert_eq!(cb.slice(2, usize::MAX), None);
    }

    #[test]
    fn shared_variant_views_one_buffer() {
        let arc: Arc<[u8]> = vec![9u8, 8, 7].into();
        let a = ColumnBytes::from(arc.clone());
        let b = ColumnBytes::from(arc);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(a.slice(0, 3), Some(&[9u8, 8, 7][..]));
    }
}
