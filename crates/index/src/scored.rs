//! Score-sorted, length-grouped inverted lists (paper §IV-C, Fig. 7).
//!
//! The top-K join wants to retrieve postings in descending *damped* score
//! order for the column currently being joined.  The damped score of a
//! posting at depth `L` for column `l` is `g · λ^(L-l)`, so two postings of
//! different depths can swap order between columns — but postings of the
//! *same* depth never do.  Grouping a keyword's postings by sequence length
//! gives at most `tree depth` **segments**, each with a single global score
//! order; the complete per-column order is recovered online by merging the
//! segment heads (done by the cursor machinery in `xtk-core`).

use xtk_xml::tree::{NodeId, XmlTree};

/// One length group of a keyword's postings, sorted by local score
/// descending.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Depth (JDewey sequence length) of every posting in this segment.
    pub len: u16,
    /// Global posting rows, in descending `g` order (ties by row).
    pub rows: Vec<u32>,
    /// Largest local score in the segment (`g` of `rows[0]`).
    pub max_score: f32,
}

/// [`build_segments`] plus observability: records the segment count and a
/// histogram of segment sizes, the quantities that drive the top-K
/// cursor-merge fan-in.
pub fn build_segments_obs(
    tree: &XmlTree,
    postings: &[NodeId],
    scores: &[f32],
    metrics: &xtk_obs::MetricsRegistry,
) -> Vec<Segment> {
    let segments = build_segments(tree, postings, scores);
    metrics.add("scored.segments", segments.len() as u64);
    let rows = metrics.histogram("scored.segment_rows");
    for s in &segments {
        rows.observe(s.rows.len() as u64);
    }
    segments
}

/// Groups `postings` by node depth and sorts each group by `scores`
/// descending.  Segments are returned in increasing `len` order.
pub fn build_segments(tree: &XmlTree, postings: &[NodeId], scores: &[f32]) -> Vec<Segment> {
    assert_eq!(postings.len(), scores.len());
    let mut by_len: Vec<Vec<u32>> = Vec::new();
    for (row, &node) in postings.iter().enumerate() {
        let d = tree.depth(node) as usize;
        if by_len.len() < d {
            by_len.resize(d, Vec::new());
        }
        let Some(bucket) = d.checked_sub(1).and_then(|i| by_len.get_mut(i)) else {
            continue; // depth 0 cannot occur (root has depth 1)
        };
        bucket.push(row as u32);
    }
    let score_of = |row: u32| scores.get(row as usize).copied().unwrap_or(f32::NEG_INFINITY);
    let mut segments = Vec::new();
    for (i, mut rows) in by_len.into_iter().enumerate() {
        if rows.is_empty() {
            continue;
        }
        rows.sort_by(|&a, &b| score_of(b).total_cmp(&score_of(a)).then(a.cmp(&b)));
        let max_score = rows.first().map_or(0.0, |&r| score_of(r));
        segments.push(Segment { len: (i + 1) as u16, rows, max_score });
    }
    segments
}

/// Full score-descending permutation of rows (used by RDIL, which scans one
/// list in raw local-score order regardless of depth).
pub fn score_order(scores: &[f32]) -> Vec<u32> {
    let mut rows: Vec<u32> = (0..scores.len() as u32).collect();
    let score_of = |row: u32| scores.get(row as usize).copied().unwrap_or(f32::NEG_INFINITY);
    rows.sort_by(|&a, &b| score_of(b).total_cmp(&score_of(a)).then(a.cmp(&b)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtk_xml::parse;

    #[test]
    fn segments_group_by_depth_and_sort_by_score() {
        let t = parse("<r><a><p/><q/></a><b/></r>").unwrap();
        let ids: Vec<NodeId> = t.ids().collect();
        // postings: a(d2), p(d3), q(d3), b(d2)... but postings must be in
        // doc order: a, p, q, b.
        let postings = [ids[1], ids[2], ids[3], ids[4]];
        let scores = [0.3, 0.5, 0.9, 0.7];
        let segs = build_segments(&t, &postings, &scores);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].len, 2);
        assert_eq!(segs[0].rows, vec![3, 0]); // b (0.7) before a (0.3)
        assert!((segs[0].max_score - 0.7).abs() < 1e-6);
        assert_eq!(segs[1].len, 3);
        assert_eq!(segs[1].rows, vec![2, 1]); // q (0.9) before p (0.5)
    }

    #[test]
    fn empty_depth_groups_are_skipped() {
        let t = parse("<r><a><p/></a></r>").unwrap();
        let ids: Vec<NodeId> = t.ids().collect();
        let segs = build_segments(&t, &[ids[2]], &[0.4]); // only depth 3
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len, 3);
    }

    #[test]
    fn ties_break_by_row_for_determinism() {
        let t = parse("<r><a/><b/><c/></r>").unwrap();
        let ids: Vec<NodeId> = t.ids().collect();
        let segs = build_segments(&t, &ids[1..4], &[0.5, 0.5, 0.5]);
        assert_eq!(segs[0].rows, vec![0, 1, 2]);
    }

    #[test]
    fn score_order_is_descending() {
        let order = score_order(&[0.2, 0.9, 0.5, 0.9]);
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let t = parse("<r/>").unwrap();
        let _ = build_segments(&t, &[t.root()], &[]);
    }
}
