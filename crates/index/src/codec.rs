//! Column compression (paper §III-D).
//!
//! Two schemes, both from the C-Store lineage the paper cites:
//!
//! * **Delta** — for columns with many distinct values (e.g. the leaf-most
//!   column): one entry per present row; the first value of each disk block
//!   is stored raw and every subsequent value as a delta from its
//!   predecessor.  This recovers the Dewey encoding's "small sibling
//!   numbers" advantage, because consecutive JDewey numbers in a sorted
//!   column are close.
//! * **Rle** — for columns with few distinct values (upper levels): each
//!   run of equal numbers becomes a `(value-delta, run-length)` pair — the
//!   paper's `(v, r, c)` triple with `r` left implicit (it is the running
//!   sum of the lengths).
//!
//! Each scheme has two physical *layouts* for the entries inside a block:
//!
//! * [`BlockLayout::Varint`] (formats v1/v2) — LEB128 varints, one
//!   continuation branch per byte.
//! * [`BlockLayout::Packed`] (format v3) — fixed-width bit-packed lanes:
//!   per block, a 1-byte lane width chosen from the block's largest entry,
//!   then every entry at exactly that many bits.  Decoding is a branchless
//!   chunked loop (8 entries at a time from 64-bit windows) instead of a
//!   data-dependent branch per byte.
//!
//! Values are arranged in 4 KiB blocks; each block is self-contained
//! (restarts the delta base), which is what the [sparse
//! index](crate::sparse) points into.  The row coordinates themselves are
//! not stored per column: the per-term *lengths array* (depth of each
//! posting) determines which global rows are present at each level, so
//! decoding reconstructs exact global-row runs.
//!
//! Decoding goes through a per-thread [`DecodeScratch`] arena
//! ([`with_decode_scratch`]) so the hot path performs no per-block
//! allocation: run/delta/length buffers retain their capacity across
//! blocks and columns, and callers freeze the finished runs into whatever
//! owned form they need (`Vec<Run>` here, `Arc<[Run]>` in the block cache).

use crate::columnar::{Column, Run};
use std::cell::RefCell;

/// Target byte size of one compressed block (paper: disk blocks).
pub const BLOCK_SIZE: usize = 4096;

/// Compression scheme chosen for a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// One delta per present row; good for high-cardinality columns.
    Delta,
    /// One `(value-delta, run-length)` pair per run; good for
    /// low-cardinality columns.
    Rle,
}

/// Physical layout of the entries inside each block of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockLayout {
    /// LEB128 varint entries (on-disk formats v1 and v2).
    #[default]
    Varint,
    /// Fixed-width bit-packed lanes (on-disk format v3): a per-block lane
    /// width byte followed by every entry at exactly that many bits.
    Packed,
}

/// A compressed column: self-contained blocks plus per-block minimum values
/// (the sparse-index keys).
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedColumn {
    /// Scheme used for every block of this column.
    pub scheme: Scheme,
    /// Physical entry layout used for every block of this column.
    pub layout: BlockLayout,
    /// Concatenated block payloads.
    pub bytes: Vec<u8>,
    /// Byte offset of each block in `bytes`.
    pub block_offsets: Vec<u32>,
    /// First (smallest) value stored in each block.
    pub block_first_values: Vec<u32>,
    /// Number of rows encoded in each block (format v2 footer).  Lets a
    /// reader compute the global-row prefix of any block in O(1) instead
    /// of decoding every preceding block.
    pub block_rows: Vec<u32>,
    /// Last (largest) value stored in each block (format v2 footer).
    /// With `block_first_values` this brackets the block's value range,
    /// so probes outside `[first, last]` skip the decode outright.
    pub block_last_values: Vec<u32>,
}

impl CompressedColumn {
    /// Total payload size in bytes (excluding the sparse entries, which
    /// [`crate::sizes`] accounts separately).
    pub fn payload_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.block_offsets.len()
    }
}

/// Appends a LEB128 varint.
pub fn write_varint(mut v: u32, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Number of bytes [`write_varint`] emits for `v`, for size accounting
/// that must match the writer byte for byte.
pub fn varint_len(mut v: u32) -> usize {
    let mut n = 1;
    v >>= 7;
    while v != 0 {
        n += 1;
        v >>= 7;
    }
    n
}

/// Reads a LEB128 varint, advancing `pos`: `None` on truncation or a
/// varint longer than a `u32` allows.
pub fn try_read_varint(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let mut v = 0u32;
    let mut shift = 0;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        v |= ((byte & 0x7f) as u32) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 35 {
            return None;
        }
    }
}

/// Picks the scheme the paper prescribes: RLE when duplicates dominate
/// (distinct values < half the rows), delta otherwise.
pub fn choose_scheme(col: &Column) -> Scheme {
    let rows = col.row_count();
    if (col.distinct() as u64) * 2 < rows {
        Scheme::Rle
    } else {
        Scheme::Delta
    }
}

// ---------------------------------------------------------------------------
// Bit-packed lanes (format v3)

/// Bits needed to represent `v` exactly (0 for 0, 32 for `u32::MAX`).
/// This is the per-block lane-width rule: a block's width is the maximum
/// `bit_width` over its entries.
fn bit_width(v: u32) -> u32 {
    32 - v.leading_zeros()
}

/// Exact byte length of a lane holding `count` entries of `width` bits.
fn lane_bytes(count: usize, width: u32) -> usize {
    ((count as u64 * width as u64).div_ceil(8)) as usize
}

/// Appends `vals` LSB-first at `width` bits each.  Entries must satisfy
/// `bit_width(v) <= width`; the writer chooses `width` as the block max.
fn pack_lane(vals: &[u32], width: u32, out: &mut Vec<u8>) {
    if width == 0 {
        return; // every entry is zero; the lane is empty by definition
    }
    out.reserve(lane_bytes(vals.len(), width));
    let mut acc = 0u64;
    let mut nbits = 0u32;
    for &v in vals {
        // nbits < 8 here, width <= 32, so at most 39 bits are in flight.
        acc |= (v as u64) << nbits;
        nbits += width;
        while nbits >= 8 {
            out.push((acc & 0xff) as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push((acc & 0xff) as u8);
    }
}

/// Decodes a lane of exactly `count` entries at `width` bits into `out`.
///
/// The lane length must be exact (`lane_bytes(count, width)`); trailing or
/// missing bytes reject the block.  The lane is staged into `padded` with
/// eight zero bytes appended so every entry reads one aligned 64-bit
/// window — the inner loop is branchless (no per-byte continuation test,
/// no tail bounds check) and unrolls 8 entries at a time.
fn unpack_lane(
    lane: &[u8],
    width: u32,
    count: usize,
    padded: &mut Vec<u8>,
    out: &mut Vec<u32>,
) -> Option<()> {
    out.clear();
    if lane.len() as u64 != (count as u64 * width as u64).div_ceil(8) {
        return None;
    }
    if width == 0 {
        out.resize(count, 0);
        return Some(());
    }
    padded.clear();
    padded.extend_from_slice(lane);
    padded.extend_from_slice(&[0u8; 8]);
    out.reserve(count);
    let mask = (1u64 << width) - 1;
    let width = width as usize;
    let mut bit = 0usize;
    let mut chunk = [0u32; 8];
    let mut remaining = count;
    while remaining >= 8 {
        for slot in &mut chunk {
            let byte = bit >> 3;
            // Always in bounds: byte + 8 <= lane.len() + 8 == padded.len();
            // the `?`s exist only to keep the function panic-free.
            let window = u64::from_le_bytes(padded.get(byte..byte + 8)?.try_into().ok()?);
            *slot = ((window >> (bit & 7)) & mask) as u32;
            bit += width;
        }
        out.extend_from_slice(&chunk);
        remaining -= 8;
    }
    for _ in 0..remaining {
        let byte = bit >> 3;
        let window = u64::from_le_bytes(padded.get(byte..byte + 8)?.try_into().ok()?);
        out.push(((window >> (bit & 7)) & mask) as u32);
        bit += width;
    }
    Some(())
}

// ---------------------------------------------------------------------------
// Encoding

/// Compresses a column with the given scheme in the varint layout
/// (formats v1/v2).
pub fn encode_column(col: &Column, scheme: Scheme) -> CompressedColumn {
    let mut bytes = Vec::new();
    let mut block_offsets = Vec::new();
    let mut block_first_values = Vec::new();
    let mut block_rows: Vec<u32> = Vec::new();
    let mut block_last_values: Vec<u32> = Vec::new();
    let mut block_start = 0usize;
    let mut prev: Option<u32> = None;

    let begin_block = |bytes: &mut Vec<u8>,
                           block_offsets: &mut Vec<u32>,
                           block_first_values: &mut Vec<u32>,
                           block_rows: &mut Vec<u32>,
                           block_last_values: &mut Vec<u32>,
                           value: u32| {
        block_offsets.push(bytes.len() as u32);
        block_first_values.push(value);
        block_rows.push(0);
        block_last_values.push(value);
        bytes.extend_from_slice(&value.to_le_bytes());
    };
    // Footer bookkeeping for the entry just encoded into the open block.
    let account = |block_rows: &mut Vec<u32>, block_last_values: &mut Vec<u32>, value: u32, rows: u32| {
        if let Some(r) = block_rows.last_mut() {
            *r += rows;
        }
        if let Some(l) = block_last_values.last_mut() {
            *l = value;
        }
    };

    match scheme {
        Scheme::Delta => {
            for run in &col.runs {
                for _ in 0..run.len {
                    match prev {
                        Some(p) if bytes.len() - block_start < BLOCK_SIZE => {
                            write_varint(run.value - p, &mut bytes);
                        }
                        _ => {
                            block_start = bytes.len();
                            begin_block(
                                &mut bytes,
                                &mut block_offsets,
                                &mut block_first_values,
                                &mut block_rows,
                                &mut block_last_values,
                                run.value,
                            );
                        }
                    }
                    account(&mut block_rows, &mut block_last_values, run.value, 1);
                    prev = Some(run.value);
                }
            }
        }
        Scheme::Rle => {
            for run in &col.runs {
                match prev {
                    Some(p) if bytes.len() - block_start < BLOCK_SIZE => {
                        write_varint(run.value - p, &mut bytes);
                    }
                    _ => {
                        block_start = bytes.len();
                        begin_block(
                            &mut bytes,
                            &mut block_offsets,
                            &mut block_first_values,
                            &mut block_rows,
                            &mut block_last_values,
                            run.value,
                        );
                    }
                }
                account(&mut block_rows, &mut block_last_values, run.value, run.len);
                prev = Some(run.value);
                write_varint(run.len, &mut bytes);
            }
        }
    }
    CompressedColumn {
        scheme,
        layout: BlockLayout::Varint,
        bytes,
        block_offsets,
        block_first_values,
        block_rows,
        block_last_values,
    }
}

/// Compresses a column with the given scheme in the bit-packed layout
/// (format v3).
///
/// Block wire format, after the shared raw `u32` LE first value:
///
/// * `Delta`: `[extra: varint][width: u8][packed deltas]` — `extra`
///   packed value deltas at `width` bits (the block holds `extra + 1`
///   rows); `width` is the maximum [`bit_width`] over the block's deltas.
/// * `Rle`: `[pairs: varint][vwidth: u8][lwidth: u8][packed value
///   deltas][packed lengths]` — `pairs - 1` value deltas (the first
///   run's delta is implicitly 0) then `pairs` run lengths, each lane at
///   its own block-max width.
///
/// Both lanes are exact-length: a decoder rejects a block whose lane
/// bytes disagree with the advertised entry count and width.  Blocks are
/// cut greedily so the encoded block size never exceeds [`BLOCK_SIZE`];
/// directory footers (`block_rows`, `block_last_values`) are identical to
/// the v2 encoder's, so `find()` and the Table I size accounting work
/// unchanged.
pub fn encode_column_packed(col: &Column, scheme: Scheme) -> CompressedColumn {
    let mut cc = CompressedColumn {
        scheme,
        layout: BlockLayout::Packed,
        bytes: Vec::new(),
        block_offsets: Vec::new(),
        block_first_values: Vec::new(),
        block_rows: Vec::new(),
        block_last_values: Vec::new(),
    };
    match scheme {
        Scheme::Delta => encode_packed_delta(col, &mut cc),
        Scheme::Rle => encode_packed_rle(col, &mut cc),
    }
    cc
}

fn flush_packed_delta(cc: &mut CompressedColumn, first: u32, last: u32, deltas: &[u32], width: u32) {
    cc.block_offsets.push(cc.bytes.len() as u32);
    cc.block_first_values.push(first);
    cc.block_rows.push(deltas.len() as u32 + 1);
    cc.block_last_values.push(last);
    cc.bytes.extend_from_slice(&first.to_le_bytes());
    write_varint(deltas.len() as u32, &mut cc.bytes);
    cc.bytes.push(width as u8);
    pack_lane(deltas, width, &mut cc.bytes);
}

fn encode_packed_delta(col: &Column, cc: &mut CompressedColumn) {
    let mut first: Option<u32> = None;
    let mut prev = 0u32;
    let mut deltas: Vec<u32> = Vec::new();
    let mut width = 0u32;
    for run in &col.runs {
        for _ in 0..run.len {
            let v = run.value;
            match first {
                None => {
                    first = Some(v);
                }
                Some(f) => {
                    let d = v - prev;
                    let w = width.max(bit_width(d));
                    let size = 4
                        + varint_len(deltas.len() as u32 + 1)
                        + 1
                        + lane_bytes(deltas.len() + 1, w);
                    if size > BLOCK_SIZE {
                        flush_packed_delta(cc, f, prev, &deltas, width);
                        deltas.clear();
                        width = 0;
                        first = Some(v);
                    } else {
                        deltas.push(d);
                        width = w;
                    }
                }
            }
            prev = v;
        }
    }
    if let Some(f) = first {
        flush_packed_delta(cc, f, prev, &deltas, width);
    }
}

#[allow(clippy::too_many_arguments)]
fn flush_packed_rle(
    cc: &mut CompressedColumn,
    first: u32,
    last: u32,
    rows: u32,
    vdeltas: &[u32],
    lens: &[u32],
    vw: u32,
    lw: u32,
) {
    cc.block_offsets.push(cc.bytes.len() as u32);
    cc.block_first_values.push(first);
    cc.block_rows.push(rows);
    cc.block_last_values.push(last);
    cc.bytes.extend_from_slice(&first.to_le_bytes());
    write_varint(lens.len() as u32, &mut cc.bytes);
    cc.bytes.push(vw as u8);
    cc.bytes.push(lw as u8);
    pack_lane(vdeltas, vw, &mut cc.bytes);
    pack_lane(lens, lw, &mut cc.bytes);
}

fn encode_packed_rle(col: &Column, cc: &mut CompressedColumn) {
    let mut first: Option<u32> = None;
    let mut prev = 0u32;
    let mut rows = 0u32;
    let mut vdeltas: Vec<u32> = Vec::new();
    let mut lens: Vec<u32> = Vec::new();
    let (mut vw, mut lw) = (0u32, 0u32);
    for run in &col.runs {
        match first {
            None => {
                first = Some(run.value);
                lens.push(run.len);
                lw = bit_width(run.len);
                rows = run.len;
            }
            Some(f) => {
                let d = run.value - prev;
                let nvw = vw.max(bit_width(d));
                let nlw = lw.max(bit_width(run.len));
                let pairs = lens.len() + 1;
                let size = 4
                    + varint_len(pairs as u32)
                    + 2
                    + lane_bytes(pairs - 1, nvw)
                    + lane_bytes(pairs, nlw);
                if size > BLOCK_SIZE {
                    flush_packed_rle(cc, f, prev, rows, &vdeltas, &lens, vw, lw);
                    vdeltas.clear();
                    lens.clear();
                    first = Some(run.value);
                    lens.push(run.len);
                    vw = 0;
                    lw = bit_width(run.len);
                    rows = run.len;
                } else {
                    vdeltas.push(d);
                    lens.push(run.len);
                    vw = nvw;
                    lw = nlw;
                    rows += run.len;
                }
            }
        }
        prev = run.value;
    }
    if let Some(f) = first {
        flush_packed_rle(cc, f, prev, rows, &vdeltas, &lens, vw, lw);
    }
}

// ---------------------------------------------------------------------------
// Decoding

/// Reusable per-thread decode buffers.
///
/// Every buffer retains its capacity across blocks and columns, so steady
/// state decoding performs no allocation: the packed lanes land in
/// `deltas`/`lens`, the padded lane copy in `padded`, and the
/// reconstructed runs accumulate in `runs`.  Callers clear `runs` at the
/// granularity they freeze (per column in [`decode_column`], per block in
/// the disk store) and copy the finished slice into its owned form.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    /// Reconstructed runs; cleared by the caller, capacity retained.
    pub runs: Vec<Run>,
    deltas: Vec<u32>,
    lens: Vec<u32>,
    padded: Vec<u8>,
}

thread_local! {
    static DECODE_SCRATCH: RefCell<DecodeScratch> = RefCell::new(DecodeScratch::default());
}

/// Runs `f` with this thread's [`DecodeScratch`] arena.
///
/// Pool workers are long-lived threads, so the arena amortizes to zero
/// allocations per decoded block.  Re-entrant use (a caller already
/// inside the closure decoding again) falls back to a fresh scratch
/// instead of panicking on the `RefCell`.
pub fn with_decode_scratch<R>(f: impl FnOnce(&mut DecodeScratch) -> R) -> R {
    DECODE_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut DecodeScratch::default()),
    })
}

/// Streaming run builder: merges consecutive `(value, row)` emissions into
/// [`Run`]s, keeping the open run in a register instead of re-reading
/// `runs.last_mut()` on every entry.
///
/// `new` adopts the caller's last accumulated run, so entries that
/// continue it (same value, contiguous rows) merge across block
/// boundaries exactly as a whole-column decode would.
struct RunEmitter {
    cur: Option<Run>,
}

impl RunEmitter {
    fn new(runs: &mut Vec<Run>) -> Self {
        Self { cur: runs.pop() }
    }

    #[inline]
    fn one(&mut self, runs: &mut Vec<Run>, value: u32, row: u32) {
        match &mut self.cur {
            Some(c) if c.value == value && c.end() == row => c.len += 1,
            cur => {
                if let Some(c) = cur.take() {
                    runs.push(c);
                }
                *cur = Some(Run { value, start: row, len: 1 });
            }
        }
    }

    /// Emits one value over a batch of rows.  `rows` is a strictly
    /// increasing slice of global row ids, so one O(1) span test
    /// (`last - first == len - 1`) decides whether the whole batch is a
    /// single contiguous run; only gapped batches fall back to per-row
    /// emission.
    fn many(&mut self, runs: &mut Vec<Run>, value: u32, rows: &[u32]) {
        let (Some(&fst), Some(&lst)) = (rows.first(), rows.last()) else {
            return;
        };
        if (lst - fst) as usize == rows.len() - 1 {
            match &mut self.cur {
                Some(c) if c.value == value && c.end() == fst => c.len += rows.len() as u32,
                cur => {
                    if let Some(c) = cur.take() {
                        runs.push(c);
                    }
                    *cur = Some(Run { value, start: fst, len: rows.len() as u32 });
                }
            }
        } else {
            for &row in rows {
                self.one(runs, value, row);
            }
        }
    }

    fn finish(self, runs: &mut Vec<Run>) {
        if let Some(c) = self.cur {
            runs.push(c);
        }
    }
}

/// Decodes one self-contained block into `scratch.runs` (appending, and
/// merging with the last accumulated run where the block continues it).
///
/// `present` are the remaining global row ids (the block consumes a
/// prefix); the number of rows consumed is returned.  `None` on any
/// malformed payload — truncated header, bad varint, wrong lane length,
/// value overflow, or more rows than `present` provides — so callers
/// reading untrusted bytes reject corruption without a panic.
pub fn decode_block_into(
    scheme: Scheme,
    layout: BlockLayout,
    block: &[u8],
    present: &[u32],
    scratch: &mut DecodeScratch,
) -> Option<usize> {
    match layout {
        BlockLayout::Varint => decode_block_varint(scheme, block, present, scratch),
        BlockLayout::Packed => decode_block_packed(scheme, block, present, scratch),
    }
}

fn decode_block_varint(
    scheme: Scheme,
    block: &[u8],
    present: &[u32],
    scratch: &mut DecodeScratch,
) -> Option<usize> {
    let header: [u8; 4] = block.get(..4)?.try_into().ok()?;
    let mut prev = u32::from_le_bytes(header);
    let mut pos = 4usize;
    let mut used = 0usize;
    let mut em = RunEmitter::new(&mut scratch.runs);
    match scheme {
        Scheme::Delta => {
            em.one(&mut scratch.runs, prev, *present.get(used)?);
            used += 1;
            while pos < block.len() {
                prev = prev.checked_add(try_read_varint(block, &mut pos)?)?;
                em.one(&mut scratch.runs, prev, *present.get(used)?);
                used += 1;
            }
        }
        Scheme::Rle => {
            let mut first_pair = true;
            while pos < block.len() {
                if !first_pair {
                    prev = prev.checked_add(try_read_varint(block, &mut pos)?)?;
                }
                first_pair = false;
                let len = try_read_varint(block, &mut pos)? as usize;
                let rows = present.get(used..used.checked_add(len)?)?;
                used += len;
                em.many(&mut scratch.runs, prev, rows);
            }
        }
    }
    em.finish(&mut scratch.runs);
    Some(used)
}

fn decode_block_packed(
    scheme: Scheme,
    block: &[u8],
    present: &[u32],
    scratch: &mut DecodeScratch,
) -> Option<usize> {
    let header: [u8; 4] = block.get(..4)?.try_into().ok()?;
    let first = u32::from_le_bytes(header);
    let mut pos = 4usize;
    match scheme {
        Scheme::Delta => {
            let extra = try_read_varint(block, &mut pos)? as usize;
            let width = u32::from(*block.get(pos)?);
            pos += 1;
            if width > 32 {
                return None;
            }
            // Bound `extra` by the remaining rows *before* any buffer is
            // sized from it, so a corrupt count cannot force a huge
            // allocation.
            let rows = present.get(..extra.checked_add(1)?)?;
            unpack_lane(block.get(pos..)?, width, extra, &mut scratch.padded, &mut scratch.deltas)?;
            // One up-front pass proves two things at once: the plain
            // `+=` below never leaves u32 (sum bound), and — when every
            // delta is nonzero — the values are strictly increasing, so
            // no entry can merge with its predecessor and run-building
            // needs no per-entry comparisons at all.
            let (mut sum, mut min) = (0u64, u32::MAX);
            for &d in &scratch.deltas {
                sum += u64::from(d);
                min = min.min(d);
            }
            if first as u64 + sum > u32::MAX as u64 {
                return None;
            }
            let (runs, deltas) = (&mut scratch.runs, &scratch.deltas);
            let mut em = RunEmitter::new(runs);
            em.one(runs, first, *rows.first()?);
            let mut value = first;
            let tail = rows.get(1..)?;
            if min > 0 {
                // Branchless fast path: only the first entry can extend
                // the run carried across the block boundary; everything
                // after it is a fresh singleton run by construction.
                em.finish(runs);
                runs.reserve(deltas.len());
                for (&d, &row) in deltas.iter().zip(tail) {
                    value += d;
                    runs.push(Run { value, start: row, len: 1 });
                }
            } else {
                for (&d, &row) in deltas.iter().zip(tail) {
                    value += d;
                    em.one(runs, value, row);
                }
                em.finish(runs);
            }
            Some(rows.len())
        }
        Scheme::Rle => {
            let pairs = try_read_varint(block, &mut pos)? as usize;
            // Each pair holds at least one row, so a well-formed block
            // never has more pairs than remaining rows; rejecting here
            // also bounds the lane allocations below.
            if pairs == 0 || pairs > present.len() {
                return None;
            }
            let vw = u32::from(*block.get(pos)?);
            pos += 1;
            let lw = u32::from(*block.get(pos)?);
            pos += 1;
            if vw > 32 || lw > 32 {
                return None;
            }
            let vbytes = lane_bytes(pairs - 1, vw);
            let vlane = block.get(pos..pos.checked_add(vbytes)?)?;
            pos += vbytes;
            unpack_lane(vlane, vw, pairs - 1, &mut scratch.padded, &mut scratch.deltas)?;
            unpack_lane(block.get(pos..)?, lw, pairs, &mut scratch.padded, &mut scratch.lens)?;
            let sum: u64 = scratch.deltas.iter().map(|&d| d as u64).sum();
            if first as u64 + sum > u32::MAX as u64 {
                return None;
            }
            let total: u64 = scratch.lens.iter().map(|&l| l as u64).sum();
            let total = usize::try_from(total).ok()?;
            let all_rows = present.get(..total)?;
            let (runs, deltas, lens) = (&mut scratch.runs, &scratch.deltas, &scratch.lens);
            let mut em = RunEmitter::new(runs);
            let mut value = first;
            let mut used = 0usize;
            for (&len, &d) in lens.iter().zip(std::iter::once(&0u32).chain(deltas.iter())) {
                value += d;
                let len = len as usize;
                let rows = all_rows.get(used..used + len)?;
                used += len;
                em.many(runs, value, rows);
            }
            em.finish(runs);
            Some(total)
        }
    }
}

/// Decodes every block of `cc`, appending the reconstructed runs to
/// `scratch.runs` (which the caller clears at its freeze granularity).
///
/// `None` when any block is malformed or the decoded row count disagrees
/// with `present_rows`.
pub fn decode_column_into(
    cc: &CompressedColumn,
    present_rows: &[u32],
    scratch: &mut DecodeScratch,
) -> Option<()> {
    let mut consumed = 0usize;
    let nblocks = cc.block_offsets.len();
    for b in 0..nblocks {
        let start = *cc.block_offsets.get(b)? as usize;
        let end = match cc.block_offsets.get(b + 1) {
            Some(&o) => o as usize,
            None => cc.bytes.len(),
        };
        let block = cc.bytes.get(start..end)?;
        let remaining = present_rows.get(consumed..)?;
        let used = decode_block_into(cc.scheme, cc.layout, block, remaining, scratch)?;
        consumed = consumed.checked_add(used)?;
    }
    if consumed != present_rows.len() {
        return None; // decoded rows disagree with the lengths array
    }
    Some(())
}

/// Decompresses a column.
///
/// `present_rows` are the global row ids present at this level (rows whose
/// posting depth reaches the level), in order; it drives the
/// reconstruction of exact global-row runs.
///
/// Decoding runs through the per-thread [`DecodeScratch`] arena, so the
/// only allocation per call is the final exact-size `Vec<Run>` copy.
///
/// Returns `None` when the payload is malformed (truncated block header,
/// varint or packed lane, or a row count that disagrees with
/// `present_rows`), so callers reading untrusted bytes can reject
/// corruption without a panic.
pub fn decode_column(cc: &CompressedColumn, present_rows: &[u32]) -> Option<Column> {
    with_decode_scratch(|scratch| {
        scratch.runs.clear();
        decode_column_into(cc, present_rows, scratch)?;
        Some(Column { runs: scratch.runs.clone() })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(runs: &[(u32, u32, u32)]) -> Column {
        Column {
            runs: runs.iter().map(|&(value, start, len)| Run { value, start, len }).collect(),
        }
    }

    fn present_rows(c: &Column) -> Vec<u32> {
        c.runs.iter().flat_map(|r| r.rows()).collect()
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u32, 1, 127, 128, 300, 16_383, 16_384, u32::MAX];
        for &v in &values {
            write_varint(v, &mut buf);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(try_read_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn delta_roundtrip_dense_rows() {
        let c = col(&[(3, 0, 1), (7, 1, 1), (8, 2, 1), (20, 3, 1)]);
        let cc = encode_column(&c, Scheme::Delta);
        assert_eq!(decode_column(&cc, &present_rows(&c)), Some(c));
    }

    #[test]
    fn rle_roundtrip_with_duplicates() {
        let c = col(&[(2, 0, 5), (4, 5, 1), (9, 6, 10)]);
        let cc = encode_column(&c, Scheme::Rle);
        assert_eq!(decode_column(&cc, &present_rows(&c)).as_ref(), Some(&c));
        // RLE of 16 rows in 3 runs is much smaller than one entry per row.
        let dd = encode_column(&c, Scheme::Delta);
        assert!(cc.payload_bytes() < dd.payload_bytes());
    }

    #[test]
    fn roundtrip_with_row_gaps() {
        // Rows 0,1 then a gap (row 2 absent at this level) then rows 3,4.
        let c = col(&[(5, 0, 2), (6, 3, 2)]);
        for scheme in [Scheme::Delta, Scheme::Rle] {
            let cc = encode_column(&c, scheme);
            assert_eq!(decode_column(&cc, &[0, 1, 3, 4]).as_ref(), Some(&c), "{scheme:?}");
        }
    }

    #[test]
    fn duplicate_values_across_gap_stay_separate_runs() {
        // Same value in two runs separated by a row gap (cannot happen for
        // real JDewey columns but the codec must not merge them).
        let c = col(&[(5, 0, 2), (5, 3, 1)]);
        let cc = encode_column(&c, Scheme::Rle);
        assert_eq!(decode_column(&cc, &[0, 1, 3]), Some(c));
    }

    #[test]
    fn blocks_split_and_sparse_keys_match() {
        // Enough rows to span several blocks.
        let runs: Vec<(u32, u32, u32)> =
            (0..20_000).map(|i| (i * 3, i, 1)).collect();
        let c = col(&runs);
        let cc = encode_column(&c, Scheme::Delta);
        assert!(cc.block_count() > 1);
        // Every block's first value matches the sparse key.
        for (b, &off) in cc.block_offsets.iter().enumerate() {
            let v = u32::from_le_bytes(cc.bytes[off as usize..off as usize + 4].try_into().unwrap());
            assert_eq!(v, cc.block_first_values[b]);
        }
        assert_eq!(decode_column(&cc, &present_rows(&c)), Some(c));
    }

    #[test]
    fn scheme_choice_follows_duplication() {
        let many_distinct = col(&[(1, 0, 1), (2, 1, 1), (3, 2, 1)]);
        assert_eq!(choose_scheme(&many_distinct), Scheme::Delta);
        let few_distinct = col(&[(1, 0, 10), (2, 10, 10)]);
        assert_eq!(choose_scheme(&few_distinct), Scheme::Rle);
    }

    #[test]
    fn footers_bracket_each_block() {
        for (scheme, runs) in [
            (Scheme::Delta, (0..20_000).map(|i| (i * 3, i, 1)).collect::<Vec<_>>()),
            (Scheme::Rle, (0..9_000).map(|i| (i * 2, i * 3, 3)).collect::<Vec<_>>()),
        ] {
            let c = col(&runs);
            for cc in [encode_column(&c, scheme), encode_column_packed(&c, scheme)] {
                assert!(cc.block_count() > 1, "{scheme:?} {:?}", cc.layout);
                assert_eq!(cc.block_rows.len(), cc.block_count());
                assert_eq!(cc.block_last_values.len(), cc.block_count());
                // Row counts per block sum to the column's total.
                let total: u64 = cc.block_rows.iter().map(|&r| r as u64).sum();
                assert_eq!(total, c.row_count(), "{scheme:?}");
                // first <= last within a block; blocks ordered and non-empty.
                for b in 0..cc.block_count() {
                    assert!(cc.block_first_values[b] <= cc.block_last_values[b]);
                    assert!(cc.block_rows[b] > 0);
                    if b > 0 {
                        assert!(cc.block_last_values[b - 1] <= cc.block_first_values[b]);
                    }
                }
            }
        }
    }

    #[test]
    fn empty_column_roundtrip() {
        let c = Column { runs: vec![] };
        for scheme in [Scheme::Delta, Scheme::Rle] {
            for cc in [encode_column(&c, scheme), encode_column_packed(&c, scheme)] {
                assert_eq!(cc.payload_bytes(), 0);
                assert_eq!(decode_column(&cc, &[]).as_ref(), Some(&c));
            }
        }
    }

    #[test]
    fn bit_width_rule() {
        assert_eq!(bit_width(0), 0);
        assert_eq!(bit_width(1), 1);
        assert_eq!(bit_width(2), 2);
        assert_eq!(bit_width(3), 2);
        assert_eq!(bit_width(255), 8);
        assert_eq!(bit_width(256), 9);
        assert_eq!(bit_width(u32::MAX), 32);
    }

    #[test]
    fn lane_pack_unpack_roundtrip() {
        let mut scratch = DecodeScratch::default();
        for width in [0u32, 1, 2, 3, 7, 8, 13, 17, 31, 32] {
            let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
            // A mix of lane lengths exercising the 8-at-a-time chunks and
            // the tail loop, with values touching the width's extremes.
            for count in [0usize, 1, 7, 8, 9, 16, 41] {
                let vals: Vec<u32> =
                    (0..count as u32).map(|i| (i.wrapping_mul(0x9e37_79b9)) & mask).collect();
                let mut lane = Vec::new();
                pack_lane(&vals, width, &mut lane);
                assert_eq!(lane.len(), lane_bytes(count, width), "w={width} n={count}");
                let mut out = Vec::new();
                assert_eq!(
                    unpack_lane(&lane, width, count, &mut scratch.padded, &mut out),
                    Some(()),
                    "w={width} n={count}"
                );
                assert_eq!(out, vals, "w={width} n={count}");
                // A lane with a stray trailing byte (or one byte short)
                // is rejected: lane lengths are exact.
                if width > 0 && count > 0 {
                    let mut long = lane.clone();
                    long.push(0);
                    assert_eq!(unpack_lane(&long, width, count, &mut scratch.padded, &mut out), None);
                    let mut short = lane.clone();
                    short.pop();
                    assert_eq!(unpack_lane(&short, width, count, &mut scratch.padded, &mut out), None);
                }
            }
        }
    }

    #[test]
    fn packed_roundtrip_matches_varint() {
        let cases = [
            vec![(3, 0, 1), (7, 1, 1), (8, 2, 1), (20, 3, 1)],
            vec![(2, 0, 5), (4, 5, 1), (9, 6, 10)],
            vec![(5, 0, 2), (6, 3, 2)],
            vec![(5, 0, 2), (5, 3, 1)],
            vec![(0, 0, 1), (u32::MAX, 1, 1)], // forces a 32-bit lane
        ];
        for runs in &cases {
            let c = col(runs);
            let present = present_rows(&c);
            for scheme in [Scheme::Delta, Scheme::Rle] {
                let v2 = encode_column(&c, scheme);
                let v3 = encode_column_packed(&c, scheme);
                assert_eq!(v3.layout, BlockLayout::Packed);
                assert_eq!(decode_column(&v3, &present), decode_column(&v2, &present), "{scheme:?}");
                assert_eq!(decode_column(&v3, &present).as_ref(), Some(&c), "{scheme:?}");
            }
        }
    }

    #[test]
    fn packed_blocks_split_and_roundtrip() {
        for (scheme, runs) in [
            (Scheme::Delta, (0..20_000).map(|i| (i * 3, i, 1)).collect::<Vec<_>>()),
            (Scheme::Rle, (0..9_000).map(|i| (i * 2, i * 3, 3)).collect::<Vec<_>>()),
        ] {
            let c = col(&runs);
            let cc = encode_column_packed(&c, scheme);
            assert!(cc.block_count() > 1, "{scheme:?}");
            // Greedy cut rule: no encoded block exceeds BLOCK_SIZE.
            for b in 0..cc.block_count() {
                let start = cc.block_offsets[b] as usize;
                let end = cc
                    .block_offsets
                    .get(b + 1)
                    .map_or(cc.bytes.len(), |&o| o as usize);
                assert!(end - start <= BLOCK_SIZE, "{scheme:?} block {b}");
            }
            assert_eq!(decode_column(&cc, &present_rows(&c)), Some(c));
        }
    }

    #[test]
    fn packed_is_smaller_on_uniform_small_deltas() {
        // Deltas of 3 need 2 bits packed vs a full varint byte, so the
        // packed payload must come in well under the varint payload.
        let runs: Vec<(u32, u32, u32)> = (0..10_000).map(|i| (i * 3, i, 1)).collect();
        let c = col(&runs);
        let v2 = encode_column(&c, Scheme::Delta);
        let v3 = encode_column_packed(&c, Scheme::Delta);
        assert!(
            v3.payload_bytes() * 2 < v2.payload_bytes(),
            "packed {} vs varint {}",
            v3.payload_bytes(),
            v2.payload_bytes()
        );
    }

    #[test]
    fn packed_rejects_trailing_or_truncated_lane() {
        let runs: Vec<(u32, u32, u32)> = (0..100).map(|i| (i * 3, i, 1)).collect();
        let c = col(&runs);
        let present = present_rows(&c);
        for scheme in [Scheme::Delta, Scheme::Rle] {
            let cc = encode_column_packed(&c, scheme);
            assert!(decode_column(&cc, &present).is_some());
            let mut long = cc.clone();
            long.bytes.push(0); // extends the final block's lane
            assert_eq!(decode_column(&long, &present), None, "{scheme:?} trailing");
            let mut short = cc.clone();
            short.bytes.pop();
            assert_eq!(decode_column(&short, &present), None, "{scheme:?} truncated");
        }
    }

    #[test]
    fn packed_rejects_oversized_row_claims() {
        // A corrupt entry count larger than the lengths array must be
        // rejected before any buffer is sized from it.
        let c = col(&[(3, 0, 1), (7, 1, 1)]);
        let cc = encode_column_packed(&c, Scheme::Delta);
        assert_eq!(decode_column(&cc, &[0]), None); // fewer rows than encoded
        let rc = encode_column_packed(&col(&[(2, 0, 5)]), Scheme::Rle);
        assert_eq!(decode_column(&rc, &[0, 1, 2]), None);
    }

    #[test]
    fn scratch_retains_capacity_across_decodes() {
        let runs: Vec<(u32, u32, u32)> = (0..5_000).map(|i| (i * 2, i, 1)).collect();
        let c = col(&runs);
        let present = present_rows(&c);
        let cc = encode_column_packed(&c, Scheme::Delta);
        assert_eq!(decode_column(&cc, &present).as_ref(), Some(&c));
        let cap_after_first = with_decode_scratch(|s| s.deltas.capacity());
        assert!(cap_after_first > 0);
        assert_eq!(decode_column(&cc, &present), Some(c));
        // The second decode reused the same thread-local buffers.
        assert_eq!(with_decode_scratch(|s| s.deltas.capacity()), cap_after_first);
    }
}
