//! Column compression (paper §III-D).
//!
//! Two schemes, both from the C-Store lineage the paper cites:
//!
//! * **Delta** — for columns with many distinct values (e.g. the leaf-most
//!   column): one entry per present row; the first value of each disk block
//!   is stored raw and every subsequent value as a varint delta from its
//!   predecessor.  This recovers the Dewey encoding's "small sibling
//!   numbers" advantage, because consecutive JDewey numbers in a sorted
//!   column are close.
//! * **Rle** — for columns with few distinct values (upper levels): each
//!   run of equal numbers becomes a `(value-delta, run-length)` pair — the
//!   paper's `(v, r, c)` triple with `r` left implicit (it is the running
//!   sum of the lengths).
//!
//! Values are arranged in 4 KiB blocks; each block is self-contained
//! (restarts the delta base), which is what the [sparse
//! index](crate::sparse) points into.  The row coordinates themselves are
//! not stored per column: the per-term *lengths array* (depth of each
//! posting) determines which global rows are present at each level, so
//! decoding reconstructs exact global-row runs.

use crate::columnar::{Column, Run};

/// Target byte size of one compressed block (paper: disk blocks).
pub const BLOCK_SIZE: usize = 4096;

/// Compression scheme chosen for a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// One varint delta per present row; good for high-cardinality columns.
    Delta,
    /// One `(value-delta, run-length)` pair per run; good for
    /// low-cardinality columns.
    Rle,
}

/// A compressed column: self-contained blocks plus per-block minimum values
/// (the sparse-index keys).
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedColumn {
    /// Scheme used for every block of this column.
    pub scheme: Scheme,
    /// Concatenated block payloads.
    pub bytes: Vec<u8>,
    /// Byte offset of each block in `bytes`.
    pub block_offsets: Vec<u32>,
    /// First (smallest) value stored in each block.
    pub block_first_values: Vec<u32>,
    /// Number of rows encoded in each block (format v2 footer).  Lets a
    /// reader compute the global-row prefix of any block in O(1) instead
    /// of decoding every preceding block.
    pub block_rows: Vec<u32>,
    /// Last (largest) value stored in each block (format v2 footer).
    /// With `block_first_values` this brackets the block's value range,
    /// so probes outside `[first, last]` skip the decode outright.
    pub block_last_values: Vec<u32>,
}

impl CompressedColumn {
    /// Total payload size in bytes (excluding the sparse entries, which
    /// [`crate::sizes`] accounts separately).
    pub fn payload_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.block_offsets.len()
    }
}

/// Appends a LEB128 varint.
pub fn write_varint(mut v: u32, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Number of bytes [`write_varint`] emits for `v`, for size accounting
/// that must match the writer byte for byte.
pub fn varint_len(mut v: u32) -> usize {
    let mut n = 1;
    v >>= 7;
    while v != 0 {
        n += 1;
        v >>= 7;
    }
    n
}

/// Reads a LEB128 varint, advancing `pos`: `None` on truncation or a
/// varint longer than a `u32` allows.
pub fn try_read_varint(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let mut v = 0u32;
    let mut shift = 0;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        v |= ((byte & 0x7f) as u32) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 35 {
            return None;
        }
    }
}

/// Picks the scheme the paper prescribes: RLE when duplicates dominate
/// (distinct values < half the rows), delta otherwise.
pub fn choose_scheme(col: &Column) -> Scheme {
    let rows = col.row_count();
    if (col.distinct() as u64) * 2 < rows {
        Scheme::Rle
    } else {
        Scheme::Delta
    }
}

/// Compresses a column with the given scheme.
pub fn encode_column(col: &Column, scheme: Scheme) -> CompressedColumn {
    let mut bytes = Vec::new();
    let mut block_offsets = Vec::new();
    let mut block_first_values = Vec::new();
    let mut block_rows: Vec<u32> = Vec::new();
    let mut block_last_values: Vec<u32> = Vec::new();
    let mut block_start = 0usize;
    let mut prev: Option<u32> = None;

    let begin_block = |bytes: &mut Vec<u8>,
                           block_offsets: &mut Vec<u32>,
                           block_first_values: &mut Vec<u32>,
                           block_rows: &mut Vec<u32>,
                           block_last_values: &mut Vec<u32>,
                           value: u32| {
        block_offsets.push(bytes.len() as u32);
        block_first_values.push(value);
        block_rows.push(0);
        block_last_values.push(value);
        bytes.extend_from_slice(&value.to_le_bytes());
    };
    // Footer bookkeeping for the entry just encoded into the open block.
    let account = |block_rows: &mut Vec<u32>, block_last_values: &mut Vec<u32>, value: u32, rows: u32| {
        if let Some(r) = block_rows.last_mut() {
            *r += rows;
        }
        if let Some(l) = block_last_values.last_mut() {
            *l = value;
        }
    };

    match scheme {
        Scheme::Delta => {
            for run in &col.runs {
                for _ in 0..run.len {
                    match prev {
                        Some(p) if bytes.len() - block_start < BLOCK_SIZE => {
                            write_varint(run.value - p, &mut bytes);
                        }
                        _ => {
                            block_start = bytes.len();
                            begin_block(
                                &mut bytes,
                                &mut block_offsets,
                                &mut block_first_values,
                                &mut block_rows,
                                &mut block_last_values,
                                run.value,
                            );
                        }
                    }
                    account(&mut block_rows, &mut block_last_values, run.value, 1);
                    prev = Some(run.value);
                }
            }
        }
        Scheme::Rle => {
            for run in &col.runs {
                match prev {
                    Some(p) if bytes.len() - block_start < BLOCK_SIZE => {
                        write_varint(run.value - p, &mut bytes);
                    }
                    _ => {
                        block_start = bytes.len();
                        begin_block(
                            &mut bytes,
                            &mut block_offsets,
                            &mut block_first_values,
                            &mut block_rows,
                            &mut block_last_values,
                            run.value,
                        );
                    }
                }
                account(&mut block_rows, &mut block_last_values, run.value, run.len);
                prev = Some(run.value);
                write_varint(run.len, &mut bytes);
            }
        }
    }
    CompressedColumn { scheme, bytes, block_offsets, block_first_values, block_rows, block_last_values }
}

/// Decompresses a column.
///
/// `present_rows` are the global row ids present at this level (rows whose
/// posting depth reaches the level), in order; it drives the
/// reconstruction of exact global-row runs.
///
/// Returns `None` when the payload is malformed (truncated block header or
/// varint, or a row count that disagrees with `present_rows`), so callers
/// reading untrusted bytes can reject corruption without a panic.
pub fn decode_column(cc: &CompressedColumn, present_rows: &[u32]) -> Option<Column> {
    let mut runs: Vec<Run> = Vec::new();
    let mut row_iter = present_rows.iter().copied();
    let push = |value: u32,
                count: u32,
                runs: &mut Vec<Run>,
                row_iter: &mut dyn Iterator<Item = u32>|
     -> Option<()> {
        for _ in 0..count {
            let row = row_iter.next()?;
            match runs.last_mut() {
                Some(last) if last.value == value && last.end() == row => last.len += 1,
                _ => runs.push(Run { value, start: row, len: 1 }),
            }
        }
        Some(())
    };

    let nblocks = cc.block_offsets.len();
    for b in 0..nblocks {
        let start = *cc.block_offsets.get(b)? as usize;
        let end = match cc.block_offsets.get(b + 1) {
            Some(&o) => o as usize,
            None => cc.bytes.len(),
        };
        let mut pos = start;
        let header: [u8; 4] = cc.bytes.get(pos..pos.checked_add(4)?)?.try_into().ok()?;
        let mut prev = u32::from_le_bytes(header);
        pos += 4;
        match cc.scheme {
            Scheme::Delta => {
                push(prev, 1, &mut runs, &mut row_iter)?;
                while pos < end {
                    let delta = try_read_varint(&cc.bytes, &mut pos)?;
                    prev = prev.checked_add(delta)?;
                    push(prev, 1, &mut runs, &mut row_iter)?;
                }
            }
            Scheme::Rle => {
                let mut first = true;
                while pos < end {
                    if !first {
                        prev = prev.checked_add(try_read_varint(&cc.bytes, &mut pos)?)?;
                    }
                    first = false;
                    let len = try_read_varint(&cc.bytes, &mut pos)?;
                    push(prev, len, &mut runs, &mut row_iter)?;
                }
            }
        }
    }
    if row_iter.next().is_some() {
        return None; // present_rows longer than the encoded column
    }
    Some(Column { runs })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(runs: &[(u32, u32, u32)]) -> Column {
        Column {
            runs: runs.iter().map(|&(value, start, len)| Run { value, start, len }).collect(),
        }
    }

    fn present_rows(c: &Column) -> Vec<u32> {
        c.runs.iter().flat_map(|r| r.rows()).collect()
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u32, 1, 127, 128, 300, 16_383, 16_384, u32::MAX];
        for &v in &values {
            write_varint(v, &mut buf);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(try_read_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn delta_roundtrip_dense_rows() {
        let c = col(&[(3, 0, 1), (7, 1, 1), (8, 2, 1), (20, 3, 1)]);
        let cc = encode_column(&c, Scheme::Delta);
        assert_eq!(decode_column(&cc, &present_rows(&c)), Some(c));
    }

    #[test]
    fn rle_roundtrip_with_duplicates() {
        let c = col(&[(2, 0, 5), (4, 5, 1), (9, 6, 10)]);
        let cc = encode_column(&c, Scheme::Rle);
        assert_eq!(decode_column(&cc, &present_rows(&c)).as_ref(), Some(&c));
        // RLE of 16 rows in 3 runs is much smaller than one entry per row.
        let dd = encode_column(&c, Scheme::Delta);
        assert!(cc.payload_bytes() < dd.payload_bytes());
    }

    #[test]
    fn roundtrip_with_row_gaps() {
        // Rows 0,1 then a gap (row 2 absent at this level) then rows 3,4.
        let c = col(&[(5, 0, 2), (6, 3, 2)]);
        for scheme in [Scheme::Delta, Scheme::Rle] {
            let cc = encode_column(&c, scheme);
            assert_eq!(decode_column(&cc, &[0, 1, 3, 4]).as_ref(), Some(&c), "{scheme:?}");
        }
    }

    #[test]
    fn duplicate_values_across_gap_stay_separate_runs() {
        // Same value in two runs separated by a row gap (cannot happen for
        // real JDewey columns but the codec must not merge them).
        let c = col(&[(5, 0, 2), (5, 3, 1)]);
        let cc = encode_column(&c, Scheme::Rle);
        assert_eq!(decode_column(&cc, &[0, 1, 3]), Some(c));
    }

    #[test]
    fn blocks_split_and_sparse_keys_match() {
        // Enough rows to span several blocks.
        let runs: Vec<(u32, u32, u32)> =
            (0..20_000).map(|i| (i * 3, i, 1)).collect();
        let c = col(&runs);
        let cc = encode_column(&c, Scheme::Delta);
        assert!(cc.block_count() > 1);
        // Every block's first value matches the sparse key.
        for (b, &off) in cc.block_offsets.iter().enumerate() {
            let v = u32::from_le_bytes(cc.bytes[off as usize..off as usize + 4].try_into().unwrap());
            assert_eq!(v, cc.block_first_values[b]);
        }
        assert_eq!(decode_column(&cc, &present_rows(&c)), Some(c));
    }

    #[test]
    fn scheme_choice_follows_duplication() {
        let many_distinct = col(&[(1, 0, 1), (2, 1, 1), (3, 2, 1)]);
        assert_eq!(choose_scheme(&many_distinct), Scheme::Delta);
        let few_distinct = col(&[(1, 0, 10), (2, 10, 10)]);
        assert_eq!(choose_scheme(&few_distinct), Scheme::Rle);
    }

    #[test]
    fn footers_bracket_each_block() {
        for (scheme, runs) in [
            (Scheme::Delta, (0..20_000).map(|i| (i * 3, i, 1)).collect::<Vec<_>>()),
            (Scheme::Rle, (0..9_000).map(|i| (i * 2, i * 3, 3)).collect::<Vec<_>>()),
        ] {
            let c = col(&runs);
            let cc = encode_column(&c, scheme);
            assert!(cc.block_count() > 1, "{scheme:?}");
            assert_eq!(cc.block_rows.len(), cc.block_count());
            assert_eq!(cc.block_last_values.len(), cc.block_count());
            // Row counts per block sum to the column's total.
            let total: u64 = cc.block_rows.iter().map(|&r| r as u64).sum();
            assert_eq!(total, c.row_count(), "{scheme:?}");
            // first <= last within a block; blocks ordered and non-empty.
            for b in 0..cc.block_count() {
                assert!(cc.block_first_values[b] <= cc.block_last_values[b]);
                assert!(cc.block_rows[b] > 0);
                if b > 0 {
                    assert!(cc.block_last_values[b - 1] <= cc.block_first_values[b]);
                }
            }
        }
    }

    #[test]
    fn empty_column_roundtrip() {
        let c = Column { runs: vec![] };
        for scheme in [Scheme::Delta, Scheme::Rle] {
            let cc = encode_column(&c, scheme);
            assert_eq!(cc.payload_bytes(), 0);
            assert_eq!(decode_column(&cc, &[]).as_ref(), Some(&c));
        }
    }
}
