//! On-disk persistence of the columnar JDewey index.
//!
//! The paper stores inverted lists "directly on the disk" rather than in a
//! column store, because the vocabulary is huge and most lists are short.
//! This module implements that file: one vocabulary section and, per term,
//! the posting depths (lengths array), optional local scores, and each
//! column as self-contained compressed blocks (see [`crate::codec`]) with
//! their sparse keys.  Reading decodes back to exact [`Column`]s.
//!
//! Experiments run on the in-memory mirror (the paper's hot-cache setup);
//! the file exists to prove the format and to give Table I honest byte
//! counts.

use crate::codec::{
    choose_scheme, decode_column, encode_column, encode_column_packed, try_read_varint,
    write_varint, BlockLayout, CompressedColumn, Scheme,
};

/// Bounded reader over the raw file bytes: every primitive read reports
/// truncation as `io::Error` instead of panicking, so corrupted files are
/// rejected cleanly.
pub(crate) struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn bad(what: &str) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, format!("corrupt index file: {what}"))
    }

    pub(crate) fn varint(&mut self, what: &str) -> io::Result<u32> {
        try_read_varint(self.bytes, &mut self.pos).ok_or_else(|| Self::bad(what))
    }

    pub(crate) fn byte(&mut self, what: &str) -> io::Result<u8> {
        let b = *self.bytes.get(self.pos).ok_or_else(|| Self::bad(what))?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn take(&mut self, n: usize, what: &str) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| Self::bad(what))?;
        if end > self.bytes.len() {
            return Err(Self::bad(what));
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn offset(&self) -> usize {
        self.pos
    }
}
use crate::columnar::Column;
use crate::builder::XmlIndex;
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;

/// File magic: "XTK" + format version 1 (no per-block footers).
pub(crate) const MAGIC_V1: u32 = 0x58544B01;
/// File magic: "XTK" + format version 2 (per-block row-count and
/// last-value footers in the directory).
pub(crate) const MAGIC_V2: u32 = 0x58544B02;
/// File magic: "XTK" + format version 3 (v2 directory + bit-packed block
/// payloads).
pub(crate) const MAGIC_V3: u32 = 0x58544B03;

/// On-disk format version.
///
/// * [`V1`](FormatVersion::V1) — the original directory: per block
///   `(offset, first value)`.  Computing the global-row prefix of block
///   `b` requires decoding blocks `0..b`.
/// * [`V2`](FormatVersion::V2) — adds per-block `(row count,
///   last value)` footers, so a reader locates any probe in O(1)
///   directory work and skips blocks whose `[first, last]` range cannot
///   contain the probe.
/// * [`V3`](FormatVersion::V3) — same directory as v2, but block
///   payloads are fixed-width bit-packed lanes
///   ([`BlockLayout::Packed`]) decoded branchlessly instead of LEB128
///   varints.  Readers accept all three versions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FormatVersion {
    /// Original format, kept writable for compatibility tests.
    V1,
    /// Varint payloads with block footers (the default).
    #[default]
    V2,
    /// Bit-packed payloads with block footers.
    V3,
}

impl FormatVersion {
    /// The physical block layout this format stores.
    pub fn layout(self) -> BlockLayout {
        match self {
            FormatVersion::V1 | FormatVersion::V2 => BlockLayout::Varint,
            FormatVersion::V3 => BlockLayout::Packed,
        }
    }

    /// Whether the directory carries per-block row/last-value footers.
    pub fn has_footers(self) -> bool {
        !matches!(self, FormatVersion::V1)
    }
}

/// Options for writing.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteIndexOptions {
    /// Include per-posting local scores (the top-K flavor of the index).
    pub include_scores: bool,
    /// File format version to emit (defaults to the current one).
    pub format: FormatVersion,
}

/// One term as read back from disk.
#[derive(Debug, Clone)]
pub struct PersistedTerm {
    /// Posting depths (the lengths array).
    pub depths: Vec<u16>,
    /// Local scores, when written with `include_scores`.
    pub scores: Option<Vec<f32>>,
    /// Decoded columns (level 1 first), identical to the in-memory ones.
    pub columns: Vec<Column>,
}

/// A reloaded columnar index (postings resolve to `(level, number)` pairs,
/// not node ids — the tree is persisted separately as XML).
#[derive(Debug, Default)]
pub struct PersistedIndex {
    /// Terms by text.
    pub terms: HashMap<String, PersistedTerm>,
}

/// Encodes the file header into `buf`.
fn encode_header(ix: &XmlIndex, opts: WriteIndexOptions, buf: &mut Vec<u8>) {
    let magic = match opts.format {
        FormatVersion::V1 => MAGIC_V1,
        FormatVersion::V2 => MAGIC_V2,
        FormatVersion::V3 => MAGIC_V3,
    };
    write_varint(magic, buf);
    write_varint(ix.vocab_size() as u32, buf);
    buf.push(opts.include_scores as u8);
}

/// Encodes one term record (vocabulary entry, lengths array, optional
/// scores, and every column's directory + payload) into `buf`.  Shared
/// by [`write_index`] and [`persisted_file_bytes`] so size accounting
/// can never drift from the real writer.
fn encode_term_record(
    ix: &XmlIndex,
    term: &crate::builder::TermData,
    opts: WriteIndexOptions,
    buf: &mut Vec<u8>,
) {
    write_varint(term.term.len() as u32, buf);
    buf.extend_from_slice(term.term.as_bytes());
    write_varint(term.postings.len() as u32, buf);
    // Lengths array.
    for &n in &term.postings {
        write_varint(ix.tree().depth(n) as u32, buf);
    }
    if opts.include_scores {
        for &s in &term.scores {
            buf.extend_from_slice(&s.to_le_bytes());
        }
    }
    write_varint(term.columns.len() as u32, buf);
    for col in &term.columns {
        let scheme = choose_scheme(col);
        let cc = match opts.format.layout() {
            BlockLayout::Varint => encode_column(col, scheme),
            BlockLayout::Packed => encode_column_packed(col, scheme),
        };
        buf.push(match scheme {
            Scheme::Delta => 0,
            Scheme::Rle => 1,
        });
        write_varint(cc.block_offsets.len() as u32, buf);
        for b in 0..cc.block_offsets.len() {
            let off = cc.block_offsets.get(b).copied().unwrap_or(0);
            let first = cc.block_first_values.get(b).copied().unwrap_or(0);
            write_varint(off, buf);
            write_varint(first, buf);
            if opts.format.has_footers() {
                // Footer: row count + last value as a delta from the
                // first (values inside a block are non-decreasing, so
                // the delta is small and varints stay short).
                let rows = cc.block_rows.get(b).copied().unwrap_or(0);
                let last = cc.block_last_values.get(b).copied().unwrap_or(first);
                write_varint(rows, buf);
                write_varint(last.saturating_sub(first), buf);
            }
        }
        write_varint(cc.bytes.len() as u32, buf);
        buf.extend_from_slice(&cc.bytes);
    }
}

/// Serializes the columnar part of `ix` to `path`.  Returns bytes written.
pub fn write_index(ix: &XmlIndex, path: &Path, opts: WriteIndexOptions) -> io::Result<u64> {
    let file = File::create(path)?;
    let mut w = CountingWriter { inner: BufWriter::new(file), written: 0 };
    let mut buf = Vec::new();
    encode_header(ix, opts, &mut buf);
    w.write_all(&buf)?;

    for (_, term) in ix.terms() {
        buf.clear();
        encode_term_record(ix, term, opts, &mut buf);
        w.write_all(&buf)?;
    }
    w.inner.flush()?;
    Ok(w.written)
}

/// [`write_index`] plus observability: records `disk.write_bytes` and
/// `disk.write_terms` into the registry so index-build runs report
/// through the same substrate as the query path.
pub fn write_index_obs(
    ix: &XmlIndex,
    path: &Path,
    opts: WriteIndexOptions,
    metrics: &xtk_obs::MetricsRegistry,
) -> io::Result<u64> {
    let written = write_index(ix, path, opts)?;
    metrics.add("disk.write_bytes", written);
    metrics.add("disk.write_terms", ix.vocab_size() as u64);
    Ok(written)
}

/// Exact size in bytes of the file [`write_index`] would produce, without
/// touching the filesystem.  Built on the same encoders as the writer,
/// so the Table I accounting in [`crate::sizes`] can be checked against
/// the genuine article.
pub fn persisted_file_bytes(ix: &XmlIndex, opts: WriteIndexOptions) -> u64 {
    let mut total = 0u64;
    let mut buf = Vec::new();
    encode_header(ix, opts, &mut buf);
    total += buf.len() as u64;
    for (_, term) in ix.terms() {
        buf.clear();
        encode_term_record(ix, term, opts, &mut buf);
        total += buf.len() as u64;
    }
    total
}

/// Reads an index file back into memory.
///
/// Malformed or truncated files are rejected with
/// [`io::ErrorKind::InvalidData`] — no panics on corrupt input.
pub fn read_index(path: &Path) -> io::Result<PersistedIndex> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut r = ByteReader::new(&bytes);
    let magic = r.varint("magic")?;
    let format = match magic {
        MAGIC_V1 => FormatVersion::V1,
        MAGIC_V2 => FormatVersion::V2,
        MAGIC_V3 => FormatVersion::V3,
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad index magic")),
    };
    let n_terms = r.varint("term count")? as usize;
    let with_scores = r.byte("score flag")? != 0;

    let mut out = PersistedIndex::default();
    for _ in 0..n_terms {
        let tlen = r.varint("term length")? as usize;
        let term = std::str::from_utf8(r.take(tlen, "term text")?)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
            .to_string();
        let n_postings = r.varint("posting count")? as usize;
        // lint:allow(L8, load-time file parse — one vec per term, not on the query path)
        let mut depths = Vec::new();
        depths.try_reserve(n_postings.min(1 << 24)).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "posting count too large")
        })?;
        for _ in 0..n_postings {
            let d = r.varint("depth")?;
            if d == 0 || d > u16::MAX as u32 {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "bad depth"));
            }
            depths.push(d as u16);
        }
        let scores = if with_scores {
            let raw = r.take(4 * n_postings, "scores")?;
            let mut s = Vec::with_capacity(n_postings);
            for c in raw.chunks_exact(4) {
                let mut le = [0u8; 4];
                le.copy_from_slice(c);
                s.push(f32::from_le_bytes(le));
            }
            Some(s)
        } else {
            None
        };
        let n_cols = r.varint("column count")? as usize;
        let max_depth = depths.iter().copied().max().unwrap_or(0) as usize;
        if n_cols != max_depth {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "column count inconsistent with posting depths",
            ));
        }
        let mut columns = Vec::with_capacity(n_cols);
        for level0 in 0..n_cols {
            let scheme = match r.byte("scheme")? {
                0 => Scheme::Delta,
                1 => Scheme::Rle,
                x => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        // lint:allow(L8, error construction on the corrupt-file bail-out)
                        format!("bad scheme byte {x}"),
                    ))
                }
            };
            let n_blocks = r.varint("block count")? as usize;
            // lint:allow(L8, load-time file parse — per-column directory vecs, not on the query path)
            let mut block_offsets = Vec::new();
            // lint:allow(L8, load-time file parse — per-column directory vecs, not on the query path)
            let mut block_first_values = Vec::new();
            // lint:allow(L8, load-time file parse — per-column directory vecs, not on the query path)
            let mut block_rows = Vec::new();
            // lint:allow(L8, load-time file parse — per-column directory vecs, not on the query path)
            let mut block_last_values = Vec::new();
            for _ in 0..n_blocks {
                block_offsets.push(r.varint("block offset")?);
                let first = r.varint("block first value")?;
                block_first_values.push(first);
                if format.has_footers() {
                    block_rows.push(r.varint("block row count")?);
                    let span = r.varint("block last-value delta")?;
                    block_last_values.push(first.checked_add(span).ok_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidData, "block last value overflow")
                    })?);
                }
            }
            let payload_len = r.varint("payload length")? as usize;
            // lint:allow(L8, load-time file parse — the owned payload copy IS the loaded column)
            let payload = r.take(payload_len, "payload")?.to_vec();
            if let Some(&last) = block_offsets.last() {
                if last as usize >= payload_len.max(1) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "block offset beyond payload",
                    ));
                }
            }
            let cc = CompressedColumn {
                scheme,
                layout: format.layout(),
                bytes: payload,
                block_offsets,
                block_first_values,
                block_rows,
                block_last_values,
            };
            // Present rows at level l: postings with depth >= l.
            let level = (level0 + 1) as u16;
            let present: Vec<u32> = depths
                .iter()
                .enumerate()
                .filter(|(_, &d)| d >= level)
                .map(|(i, _)| i as u32)
                // lint:allow(L8, load-time file parse — the per-level lengths array is built once per load)
                .collect();
            columns.push(try_decode(&cc, &present)?);
        }
        out.terms.insert(term, PersistedTerm { depths, scores, columns });
    }
    Ok(out)
}

/// Decode with corruption mapped to an error (a block whose contents do
/// not line up with the lengths array indicates a damaged file).
fn try_decode(cc: &CompressedColumn, present: &[u32]) -> io::Result<crate::columnar::Column> {
    decode_column(cc, present)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "inconsistent column payload"))
}

struct CountingWriter<W: Write> {
    inner: W,
    written: u64,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtk_xml::parse;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("xtk_disk_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_columns_and_scores() {
        let ix = XmlIndex::build(
            parse("<r><a><p>xml data</p><q>xml</q></a><b><s>data xml</s></b></r>").unwrap(),
        );
        let path = tmp("roundtrip");
        let opts = WriteIndexOptions { include_scores: true, ..Default::default() };
        let bytes = write_index(&ix, &path, opts).unwrap();
        assert!(bytes > 0);
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        assert_eq!(bytes, persisted_file_bytes(&ix, opts));
        let loaded = read_index(&path).unwrap();
        assert_eq!(loaded.terms.len(), ix.vocab_size());
        for (_, term) in ix.terms() {
            let lt = &loaded.terms[&*term.term];
            assert_eq!(lt.columns, term.columns, "columns must round-trip for {}", term.term);
            assert_eq!(lt.scores.as_ref().unwrap(), &term.scores);
            let depths: Vec<u16> =
                term.postings.iter().map(|&n| ix.tree().depth(n)).collect();
            assert_eq!(lt.depths, depths);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_without_scores() {
        let ix = XmlIndex::build(parse("<r><a>w w w</a><b>w</b></r>").unwrap());
        let path = tmp("noscores");
        write_index(&ix, &path, WriteIndexOptions::default()).unwrap();
        let loaded = read_index(&path).unwrap();
        assert!(loaded.terms["w"].scores.is_none());
        assert_eq!(loaded.terms["w"].columns, ix.term_by_str("w").unwrap().columns);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_files_still_read_identically() {
        let mut xml = String::from("<r>");
        for i in 0..400 {
            xml.push_str(&format!("<p><t>old format{} data</t></p>", i % 13));
        }
        xml.push_str("</r>");
        let ix = XmlIndex::build(parse(&xml).unwrap());
        let p1 = tmp("v1compat");
        let p2 = tmp("v2compat");
        let b1 = write_index(
            &ix,
            &p1,
            WriteIndexOptions { include_scores: true, format: FormatVersion::V1 },
        )
        .unwrap();
        let b2 = write_index(
            &ix,
            &p2,
            WriteIndexOptions { include_scores: true, format: FormatVersion::V2 },
        )
        .unwrap();
        // Footers cost bytes; v1 must stay strictly smaller.
        assert!(b1 < b2, "v1 {b1} vs v2 {b2}");
        let l1 = read_index(&p1).unwrap();
        let l2 = read_index(&p2).unwrap();
        assert_eq!(l1.terms.len(), l2.terms.len());
        for (term, t1) in &l1.terms {
            let t2 = &l2.terms[term.as_str()];
            assert_eq!(t1.columns, t2.columns, "columns differ for {term}");
            assert_eq!(t1.depths, t2.depths);
        }
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn v3_files_read_identically_to_v2() {
        let mut xml = String::from("<r>");
        for i in 0..400 {
            xml.push_str(&format!("<p><t>packed format{} data</t></p>", i % 13));
        }
        xml.push_str("</r>");
        let ix = XmlIndex::build(parse(&xml).unwrap());
        let p2 = tmp("v2packed");
        let p3 = tmp("v3packed");
        write_index(
            &ix,
            &p2,
            WriteIndexOptions { include_scores: true, format: FormatVersion::V2 },
        )
        .unwrap();
        write_index(
            &ix,
            &p3,
            WriteIndexOptions { include_scores: true, format: FormatVersion::V3 },
        )
        .unwrap();
        let l2 = read_index(&p2).unwrap();
        let l3 = read_index(&p3).unwrap();
        assert_eq!(l2.terms.len(), l3.terms.len());
        for (term, t2) in &l2.terms {
            let t3 = &l3.terms[term.as_str()];
            assert_eq!(t2.columns, t3.columns, "columns differ for {term}");
            assert_eq!(t2.depths, t3.depths);
            assert_eq!(t2.scores, t3.scores);
        }
        std::fs::remove_file(&p2).ok();
        std::fs::remove_file(&p3).ok();
    }

    #[test]
    fn persisted_file_bytes_matches_writer_for_both_formats() {
        let ix = XmlIndex::build(
            parse("<r><a><p>exact size</p></a><b>size accounting exact</b></r>").unwrap(),
        );
        for format in [FormatVersion::V1, FormatVersion::V2, FormatVersion::V3] {
            for include_scores in [false, true] {
                let opts = WriteIndexOptions { include_scores, format };
                let path = tmp(&format!("sz_{format:?}_{include_scores}"));
                let written = write_index(&ix, &path, opts).unwrap();
                assert_eq!(written, std::fs::metadata(&path).unwrap().len());
                assert_eq!(written, persisted_file_bytes(&ix, opts), "{opts:?}");
                std::fs::remove_file(&path).ok();
            }
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, [1, 2, 3, 4, 5]).unwrap();
        assert!(read_index(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
