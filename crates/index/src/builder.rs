//! Building the unified index.
//!
//! One pass over the tree tokenizes every node's direct text and produces,
//! per distinct term, all physical structures the four systems under
//! evaluation need:
//!
//! * `postings` — node ids in document order (the Dewey inverted list; node
//!   id order equals Dewey order because the arena is in pre-order),
//! * `scores` — normalized tf–idf local scores `g(v, w)`,
//! * `columns` — the JDewey column-per-level run representation (§III),
//! * `segments` — the score-sorted length groups of Fig. 7 (§IV),
//! * `score_rows` — the full score-descending permutation RDIL scans.

use crate::columnar::{build_columns, Column};
use crate::histogram::{Histogram, HISTOGRAM_MIN_ROWS};
use crate::score::{Damping, TfIdf};
use crate::scored::{build_segments, score_order, Segment};
use crate::text::token_counts;
use std::collections::HashMap;
use xtk_xml::dewey::DeweyIndex;
use xtk_xml::jdewey::JDeweyAssignment;
use xtk_xml::pool::{chunk_ranges, parallel_map, Parallelism};
use xtk_xml::tree::{NodeId, XmlTree};

/// Deterministic per-node "global importance" in `[0.7, 1.0)` — a
/// splitmix64 hash of the node id, standing in for the link-based node
/// score real systems would mix into `g(v, w)` (paper §II-B).
pub fn node_quality(node: NodeId) -> f32 {
    let mut z = node.0 as u64 ^ 0x9E3779B97F4A7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    0.7 + 0.3 * ((z >> 40) as f32 / (1u64 << 24) as f32)
}

/// Identifier of a term in the index vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

/// All physical index structures for one term.
#[derive(Debug, Clone)]
pub struct TermData {
    /// The term text.
    pub term: Box<str>,
    /// Nodes directly containing the term, in document order.
    pub postings: Vec<NodeId>,
    /// Local score `g(v, w)` per posting (aligned with `postings`).
    pub scores: Vec<f32>,
    /// JDewey columns (index 0 = level 1); `columns.len()` = max depth of
    /// any posting (`l_m` in the paper).
    pub columns: Vec<Column>,
    /// Score-sorted length groups (top-K join input).
    pub segments: Vec<Segment>,
    /// Full score-descending row permutation (RDIL input).
    pub score_rows: Vec<u32>,
    /// Per-level value histograms for cardinality estimation (§V-D);
    /// `None` for levels whose column is short enough to probe directly.
    pub histograms: Vec<Option<Histogram>>,
}

impl TermData {
    /// Posting-list length (the term's frequency in the corpus).
    #[inline]
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// `true` iff the term has no postings (cannot happen for indexed
    /// terms but keeps clippy's `len_without_is_empty` honest).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// Maximum JDewey sequence length over the postings (`l_m`).
    #[inline]
    pub fn max_len(&self) -> u16 {
        self.columns.len() as u16
    }
}

/// The local scoring function `g(v, w)` (paper §II-B: "the function g can
/// take multiple factors into account ... and combine them in an
/// arbitrary way" — the algorithms only need monotonicity of the
/// combiner).  All variants produce scores in `(0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalScorer {
    /// Normalized tf–idf times the per-node importance factor
    /// [`node_quality`] — the default, closest to a deployed ranker.
    #[default]
    TfIdfQuality,
    /// Pure normalized tf–idf (deterministic given tf/df only); useful for
    /// tests that reason about exact score values.
    TfIdf,
    /// Every occurrence scores 1.0 — degenerates ranking to "fewest damped
    /// levels win"; exercises tie handling in the top-K machinery.
    Uniform,
}

/// Options for [`XmlIndex::build_with`].
#[derive(Debug, Clone)]
pub struct IndexOptions {
    /// Damping function for score propagation (default λ = 0.9).
    pub damping: Damping,
    /// JDewey reservation gap (spare numbers per parent; default 0 —
    /// static corpora need no reserve and Table I reports it separately).
    pub jdewey_gap: u32,
    /// The local scoring function `g(v, w)`.
    pub scorer: LocalScorer,
    /// Worker threads for the build (tokenization and per-term structure
    /// construction).  The built index is bit-identical for every setting;
    /// see [`Parallelism`].
    pub parallelism: Parallelism,
}

impl Default for IndexOptions {
    fn default() -> Self {
        Self {
            damping: Damping::paper_default(),
            jdewey_gap: 0,
            scorer: LocalScorer::default(),
            parallelism: Parallelism::Serial,
        }
    }
}

/// Distinct terms of one tokenizer chunk, in first-occurrence order:
/// `(term, postings, tfs)`.
struct ChunkTokens {
    n_docs: u64,
    terms: Vec<(Box<str>, Vec<NodeId>, Vec<u32>)>,
}

/// Everything Pass 3 derives for one term (the parts computed from
/// borrowed postings/scores; zipped back with the owned vectors serially).
struct TermStructures {
    scores: Vec<f32>,
    columns: Vec<Column>,
    segments: Vec<Segment>,
    score_rows: Vec<u32>,
    histograms: Vec<Option<Histogram>>,
}

/// The unified in-memory index over one XML document.
///
/// Owns the tree plus the Dewey and JDewey encodings, the vocabulary, and
/// per-term physical structures for all four evaluated systems.
#[derive(Debug)]
pub struct XmlIndex {
    tree: XmlTree,
    dewey: DeweyIndex,
    jd: JDeweyAssignment,
    damping: Damping,
    vocab: HashMap<Box<str>, TermId>,
    terms: Vec<TermData>,
    /// `subtree_size[i]` = number of nodes in the subtree rooted at node
    /// `i` (inclusive).  Because the arena is pre-order, the subtree of `v`
    /// is exactly the id range `[v, v + subtree_size[v])`.
    subtree_size: Vec<u32>,
    /// Number of nodes with non-empty direct text ("documents" for idf).
    n_docs: u64,
    /// Index generation for result-cache invalidation: a fresh build is
    /// generation 0; rebuilds after incremental maintenance are stamped by
    /// the caller (see `JDeweyMaintainer::generation` in `xtk-xml`).  The
    /// batch result cache stores the generation a response was computed
    /// against and drops entries whose stamp no longer matches.
    generation: u64,
}

impl XmlIndex {
    /// Builds the index with default options.
    pub fn build(tree: XmlTree) -> Self {
        Self::build_with(tree, IndexOptions::default())
    }

    /// Builds the index with explicit options.
    ///
    /// With `opts.parallelism` above [`Parallelism::Serial`] the three
    /// passes fan out over worker threads; the resulting index is
    /// **bit-identical** to the serial build:
    ///
    /// * Pass 1 tokenizes contiguous node-id chunks independently, then
    ///   merges the chunk vocabularies *in chunk order* — postings stay in
    ///   document order and [`TermId`]s are assigned in global
    ///   first-occurrence order, exactly as the serial loop does;
    /// * Pass 2/3 are per-term maps whose results are merged by term index.
    pub fn build_with(tree: XmlTree, opts: IndexOptions) -> Self {
        let dewey = DeweyIndex::build(&tree);
        let jd = JDeweyAssignment::assign(&tree, opts.jdewey_gap);
        let par = opts.parallelism;

        // Pass 1: postings with term frequencies.  Over-split (4 chunks
        // per worker) so text-heavy regions don't straggle.
        let n_chunks = if par.workers() <= 1 { 1 } else { par.workers() * 4 };
        let chunks = chunk_ranges(tree.len(), n_chunks);
        let tree_ref = &tree;
        let chunked: Vec<ChunkTokens> = parallel_map(par, &chunks, |_, range| {
            let mut local: HashMap<Box<str>, usize> = HashMap::new();
            let mut terms: Vec<(Box<str>, Vec<NodeId>, Vec<u32>)> = Vec::new();
            let mut n_docs = 0u64;
            for i in range.clone() {
                let id = NodeId(i as u32);
                let text = tree_ref.text(id);
                if text.is_empty() {
                    continue;
                }
                n_docs += 1;
                for (tok, tf) in token_counts(text) {
                    let tok = tok.into_boxed_str();
                    let ti = *local.entry(tok.clone()).or_insert_with(|| {
                        terms.push((tok, Vec::new(), Vec::new()));
                        terms.len() - 1
                    });
                    terms[ti].1.push(id);
                    terms[ti].2.push(tf);
                }
            }
            ChunkTokens { n_docs, terms }
        });
        // Deterministic merge: chunks in document order, terms in their
        // first-occurrence order within each chunk — global TermIds come
        // out identical to the single-pass serial assignment.
        let mut vocab: HashMap<Box<str>, TermId> = HashMap::new();
        let mut raw: Vec<(Vec<NodeId>, Vec<u32>)> = Vec::new();
        let mut names: Vec<Box<str>> = Vec::new();
        let mut n_docs = 0u64;
        for chunk in chunked {
            n_docs += chunk.n_docs;
            for (tok, mut posts, mut tfs) in chunk.terms {
                match vocab.entry(tok) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let (p, t) = &mut raw[e.get().0 as usize];
                        p.append(&mut posts);
                        t.append(&mut tfs);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        names.push(e.key().clone());
                        e.insert(TermId(raw.len() as u32));
                        raw.push((posts, tfs));
                    }
                }
            }
        }

        // Pass 2: tf-idf scores, normalized into (0, 1] by the global max.
        // Per-term map; the global max folds over per-term maxima in term
        // order (f64 max is exact — no rounding-order concerns).
        let model = TfIdf { n_docs: n_docs.max(1) };
        let scored: Vec<(Vec<f64>, f64)> = parallel_map(par, &raw, |_, (posts, tfs)| {
            let df = posts.len() as u64;
            let scores: Vec<f64> = tfs.iter().map(|&tf| model.raw(tf, df)).collect();
            let mx = scores.iter().fold(f64::MIN_POSITIVE, |a, &s| a.max(s));
            (scores, mx)
        });
        let max_raw = scored.iter().fold(f64::MIN_POSITIVE, |a, &(_, mx)| a.max(mx));
        let all_scores: Vec<Vec<f64>> = scored.into_iter().map(|(s, _)| s).collect();

        // Pass 3: physical structures per term.  The local score combines
        // the normalized tf-idf with a per-node "global importance" factor
        // (the paper's g may mix IR scores with link-based node scores);
        // a deterministic hash stands in for PageRank-style importance and
        // keeps scores spread out — without it, planted tf=1 terms would
        // all tie and every top-K threshold would be degenerate.
        let jd_ref = &jd;
        let built: Vec<TermStructures> = parallel_map(par, &raw, |i, (postings, _tfs)| {
            let scores: Vec<f32> = all_scores[i]
                .iter()
                .zip(postings)
                .map(|(&s, &node)| match opts.scorer {
                    LocalScorer::TfIdfQuality => (s / max_raw) as f32 * node_quality(node),
                    LocalScorer::TfIdf => (s / max_raw) as f32,
                    LocalScorer::Uniform => 1.0,
                })
                .collect();
            let columns = build_columns(tree_ref, jd_ref, postings);
            let segments = build_segments(tree_ref, postings, &scores);
            let score_rows = score_order(&scores);
            let histograms = columns
                .iter()
                .map(|c| {
                    if c.row_count() >= HISTOGRAM_MIN_ROWS {
                        Histogram::build(c)
                    } else {
                        None
                    }
                })
                .collect();
            TermStructures { scores, columns, segments, score_rows, histograms }
        });
        let mut terms = Vec::with_capacity(raw.len());
        for (i, ((postings, _tfs), built)) in raw.into_iter().zip(built).enumerate() {
            terms.push(TermData {
                term: std::mem::take(&mut names[i]),
                postings,
                scores: built.scores,
                columns: built.columns,
                segments: built.segments,
                score_rows: built.score_rows,
                histograms: built.histograms,
            });
        }

        // Subtree sizes from a reverse pass (children have larger ids).
        let mut subtree_size = vec![1u32; tree.len()];
        for i in (0..tree.len()).rev() {
            let id = NodeId(i as u32);
            if let Some(p) = tree.parent(id) {
                subtree_size[p.index()] += subtree_size[i];
            }
        }

        Self { tree, dewey, jd, damping: opts.damping, vocab, terms, subtree_size, n_docs, generation: 0 }
    }

    /// Index generation (0 for a fresh build; see the field docs).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Stamps the index generation after a maintenance rebuild.
    pub fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// Builder-style [`XmlIndex::set_generation`].
    pub fn with_generation(mut self, generation: u64) -> Self {
        self.generation = generation;
        self
    }

    /// The indexed tree.
    #[inline]
    pub fn tree(&self) -> &XmlTree {
        &self.tree
    }

    /// Dewey ids of every node.
    #[inline]
    pub fn dewey(&self) -> &DeweyIndex {
        &self.dewey
    }

    /// The JDewey assignment.
    #[inline]
    pub fn jd(&self) -> &JDeweyAssignment {
        &self.jd
    }

    /// The damping function used when propagating scores.
    #[inline]
    pub fn damping(&self) -> &Damping {
        &self.damping
    }

    /// Number of "documents" (nodes with direct text).
    #[inline]
    pub fn doc_count(&self) -> u64 {
        self.n_docs
    }

    /// Number of distinct terms.
    #[inline]
    pub fn vocab_size(&self) -> usize {
        self.terms.len()
    }

    /// Looks a term up in the vocabulary (terms are stored lowercased).
    pub fn term_id(&self, term: &str) -> Option<TermId> {
        if term.chars().any(|c| c.is_uppercase()) {
            self.vocab.get(term.to_lowercase().as_str()).copied()
        } else {
            self.vocab.get(term).copied()
        }
    }

    /// The physical structures of a term.
    #[inline]
    pub fn term(&self, id: TermId) -> &TermData {
        &self.terms[id.0 as usize]
    }

    /// Convenience: term data by string, if indexed.
    pub fn term_by_str(&self, term: &str) -> Option<&TermData> {
        self.term_id(term).map(|t| self.term(t))
    }

    /// Iterates over all `(TermId, TermData)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (TermId, &TermData)> {
        self.terms.iter().enumerate().map(|(i, t)| (TermId(i as u32), t))
    }

    /// The arena id range `[v, end)` covered by the subtree of `v`.
    /// Valid because the arena is in pre-order.
    pub fn subtree_range(&self, v: NodeId) -> std::ops::Range<NodeId> {
        let end = v.0 + self.subtree_size[v.index()];
        v..NodeId(end)
    }

    /// Resolves a `(level, JDewey number)` pair to its node.
    #[inline]
    pub fn node_at(&self, level: u16, number: u32) -> Option<NodeId> {
        self.jd.node_at(level, number)
    }

    /// Replaces the occurrence scores of term `id` with `scores` (one per
    /// posting, aligned with the posting list) and rebuilds the
    /// score-derived structures: the top-K segment summaries and the RDIL
    /// score permutation.  JDewey columns and level histograms depend only
    /// on structure and are kept as-is.
    ///
    /// This is the hook `xtk-core::shard` uses to stamp *corpus-global*
    /// tf-idf scores onto a per-shard index, so a result's score is
    /// bit-identical no matter which shard computed it.  Returns `false`
    /// (and changes nothing) when `id` is unknown or the length does not
    /// match the posting list.
    pub fn override_scores(&mut self, id: TermId, scores: Vec<f32>) -> bool {
        let tree = &self.tree;
        let Some(t) = self.terms.get_mut(id.0 as usize) else { return false };
        if scores.len() != t.postings.len() {
            return false;
        }
        t.segments = build_segments(tree, &t.postings, &scores);
        t.score_rows = score_order(&scores);
        t.scores = scores;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtk_xml::parse;

    fn index(xml: &str) -> XmlIndex {
        XmlIndex::build(parse(xml).unwrap())
    }

    #[test]
    fn vocabulary_and_postings() {
        let ix = index("<r><a>xml data</a><b>xml</b><c>keyword search</c></r>");
        assert_eq!(ix.vocab_size(), 4);
        let xml = ix.term_by_str("xml").unwrap();
        assert_eq!(xml.len(), 2);
        assert_eq!(ix.term_by_str("data").unwrap().len(), 1);
        assert!(ix.term_by_str("missing").is_none());
        // Case-insensitive lookup.
        assert!(ix.term_id("XML").is_some());
    }

    #[test]
    fn postings_in_document_order() {
        let ix = index("<r><a>w</a><b><c>w</c></b><d>w</d></r>");
        let t = ix.term_by_str("w").unwrap();
        let mut sorted = t.postings.clone();
        sorted.sort();
        assert_eq!(t.postings, sorted);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn scores_are_normalized_and_positive() {
        let ix = index("<r><a>rare</a><b>common common</b><c>common</c></r>");
        for (_, t) in ix.terms() {
            for &s in &t.scores {
                assert!(s > 0.0 && s <= 1.0, "score {s} out of range");
            }
        }
        // A rarer term outscores a more common one at equal tf.
        let rare = ix.term_by_str("rare").unwrap().scores[0];
        let common = ix.term_by_str("common").unwrap().scores[1]; // tf=1 occurrence
        assert!(rare > common);
        // Higher tf outscores lower tf for the same term.
        let t = ix.term_by_str("common").unwrap();
        assert!(t.scores[0] > t.scores[1]);
    }

    #[test]
    fn columns_match_posting_depths() {
        let ix = index("<r><a><p>deep</p></a><b>deep</b></r>");
        let t = ix.term_by_str("deep").unwrap();
        assert_eq!(t.max_len(), 3);
        assert_eq!(t.columns[0].row_count(), 2); // both under root
        assert_eq!(t.columns[2].row_count(), 1); // only the level-3 posting
    }

    #[test]
    fn segments_and_score_rows_are_consistent() {
        let ix = index("<r><a>w</a><b><c>w</c></b><d>w w w</d></r>");
        let t = ix.term_by_str("w").unwrap();
        let seg_rows: usize = t.segments.iter().map(|s| s.rows.len()).sum();
        assert_eq!(seg_rows, t.len());
        assert_eq!(t.score_rows.len(), t.len());
        // score_rows is score-descending.
        for w in t.score_rows.windows(2) {
            assert!(t.scores[w[0] as usize] >= t.scores[w[1] as usize]);
        }
    }

    #[test]
    fn subtree_ranges_cover_descendants() {
        let ix = index("<r><a><p>x</p><q>x</q></a><b>x</b></r>");
        let tree = ix.tree();
        let a = tree.children(tree.root())[0];
        let range = ix.subtree_range(a);
        let members: Vec<NodeId> = tree.descendants_or_self(a).collect();
        for m in &members {
            assert!(range.contains(m));
        }
        assert_eq!(range.end.0 - range.start.0, members.len() as u32);
    }

    #[test]
    fn doc_count_counts_text_nodes() {
        let ix = index("<r><a>x</a><b/><c>y</c></r>");
        assert_eq!(ix.doc_count(), 2);
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        // Enough text nodes to spread across many chunks, with terms that
        // recur across chunk boundaries so the vocabulary merge is
        // actually exercised.
        let mut xml = String::from("<r>");
        for i in 0..300 {
            xml.push_str(&format!("<p>shared term{} shared{} x</p>", i % 17, i % 5));
        }
        xml.push_str("</r>");
        let tree = parse(&xml).unwrap();
        let serial = XmlIndex::build_with(tree.clone(), IndexOptions::default());
        for par in [Parallelism::Fixed(2), Parallelism::Fixed(8), Parallelism::Auto] {
            let p = XmlIndex::build_with(
                tree.clone(),
                IndexOptions { parallelism: par, ..Default::default() },
            );
            assert_eq!(p.vocab_size(), serial.vocab_size(), "{par}");
            assert_eq!(p.doc_count(), serial.doc_count(), "{par}");
            for ((_, a), (_, b)) in serial.terms().zip(p.terms()) {
                // Same TermId order, same postings, bit-identical scores,
                // same physical structures.
                assert_eq!(a.term, b.term, "{par}");
                assert_eq!(a.postings, b.postings, "{par} {}", a.term);
                let sa: Vec<u32> = a.scores.iter().map(|s| s.to_bits()).collect();
                let sb: Vec<u32> = b.scores.iter().map(|s| s.to_bits()).collect();
                assert_eq!(sa, sb, "{par} {}", a.term);
                assert_eq!(a.columns, b.columns, "{par} {}", a.term);
                assert_eq!(a.score_rows, b.score_rows, "{par} {}", a.term);
            }
        }
    }

    #[test]
    fn attribute_text_is_indexed() {
        let ix = index(r#"<r><paper year="2010">xml</paper></r>"#);
        assert!(ix.term_by_str("2010").is_some());
        assert!(ix.term_by_str("xml").is_some());
    }

    #[test]
    fn scorer_variants_produce_expected_ranges() {
        let tree = parse("<r><a>x x y</a><b>x</b></r>").unwrap();
        for scorer in [LocalScorer::TfIdfQuality, LocalScorer::TfIdf, LocalScorer::Uniform] {
            let ix = XmlIndex::build_with(
                tree.clone(),
                IndexOptions { scorer, ..Default::default() },
            );
            for (_, t) in ix.terms() {
                for &s in &t.scores {
                    assert!(s > 0.0 && s <= 1.0, "{scorer:?}: {s}");
                }
            }
            if scorer == LocalScorer::Uniform {
                assert!(ix.term_by_str("x").unwrap().scores.iter().all(|&s| s == 1.0));
            }
            if scorer == LocalScorer::TfIdf {
                // tf=2 occurrence outscores tf=1 deterministically.
                let x = ix.term_by_str("x").unwrap();
                assert!(x.scores[0] > x.scores[1]);
            }
        }
    }
}
