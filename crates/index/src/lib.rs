#![forbid(unsafe_code)]

//! Indexing substrate for `xtk` — everything between the XML tree and the
//! query algorithms of `xtk-core`.
//!
//! The paper (Chen & Papakonstantinou, ICDE 2010) evaluates four systems,
//! each with its own physical index; all four are built here from one pass
//! over the document:
//!
//! * **Join-based** (§III): per-keyword inverted lists of JDewey sequences
//!   sorted in JDewey order and stored **column per tree level**
//!   ([`columnar`]), compressed with per-block deltas or `(v, r, c)` RLE
//!   triples ([`codec`]), plus sparse per-column indices ([`sparse`]).
//! * **Top-K join** (§IV): the same columns plus per-posting local scores
//!   ([`score`]) and the score-sorted, length-grouped segment lists of
//!   Fig. 7 ([`scored`]).
//! * **Stack-based / index-based baselines**: doc-order Dewey posting lists
//!   ([`postings`]), prefix-compressed for size accounting, and a B-tree
//!   emulation with per-entry `(keyword, Dewey)` keys ([`btree`]) matching
//!   the BerkeleyDB layout whose size Table I reports.
//! * **RDIL**: score-sorted postings + doc-order B-trees per keyword.
//!
//! [`builder::XmlIndex`] ties these together; [`disk`] persists and reloads
//! the columnar format; [`sizes`] produces the Table I byte counts.

pub mod btree;
pub mod builder;
pub mod bytes;
pub mod cache;
pub mod codec;
pub mod columnar;
pub mod disk;
pub mod histogram;
pub mod diskcol;
pub mod postings;
pub mod score;
pub mod scored;
pub mod sizes;
pub mod sparse;
pub mod text;

pub use builder::{IndexOptions, LocalScorer, TermData, TermId, XmlIndex};
pub use columnar::{Column, Run};
pub use score::Damping;
