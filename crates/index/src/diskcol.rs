//! Disk-resident column access (paper §III-B, §V).
//!
//! The paper stores the inverted lists "directly on the disk" and runs on
//! a hot cache; crucially, Algorithm 1 "does not read the whole JDewey
//! sequences from the disk at once" — it touches one column at a time,
//! starting from `l_0 = min l_m^i`, and within a column the index join
//! touches only the blocks the sparse index points at.
//!
//! [`DiskColumnStore`] provides exactly that access pattern over the file
//! written by [`crate::disk::write_index`]: per term and level it exposes
//! a [`DiskColumn`] whose `find` decodes **at most one block** (located
//! via the sparse keys) and whose `scan` decodes blocks lazily in order.
//! A tiny block cache emulates the paper's hot-cache setting and counts
//! block reads so experiments can report I/O.

use crate::codec::{try_read_varint, Scheme};
use crate::disk::ByteReader;
use crate::columnar::Run;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::Path;

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("corrupt index file: {what}"))
}

/// Byte span plus metadata for one column inside the index file.
#[derive(Debug, Clone)]
struct ColumnMeta {
    scheme: Scheme,
    /// `(file offset, first value, first present-row ordinal)` per block.
    blocks: Vec<(u64, u32, u32)>,
    /// One past the last payload byte of the column.
    end: u64,
    /// Rows present at this level (global row ids), needed to reconstruct
    /// run coordinates.  Kept in memory: 4 bytes per present row, the same
    /// information the lengths array encodes.
    present_rows: Vec<u32>,
}

/// Per-term metadata in the store.
#[derive(Debug, Clone)]
struct TermMeta {
    columns: Vec<ColumnMeta>,
}

/// A read-only, block-granular view of a columnar index file.
#[derive(Debug)]
pub struct DiskColumnStore {
    file: RefCell<File>,
    terms: HashMap<String, TermMeta>,
    cache: RefCell<HashMap<(u64, u32), Vec<Run>>>,
    /// Number of block decodes that missed the cache.
    pub block_reads: RefCell<u64>,
}

impl DiskColumnStore {
    /// Opens an index file written by [`crate::disk::write_index`],
    /// reading only the per-term directory (lengths arrays and block
    /// tables), not the column payloads.
    pub fn open(path: &Path) -> io::Result<Self> {
        // The format is sequential, so one pass builds the directory; the
        // payload bytes are skipped over.  All reads are bounds-checked so
        // corrupt files fail with InvalidData instead of panicking.
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let mut r = ByteReader::new(&bytes);
        let magic = r.varint("magic")?;
        if magic != 0x58544B01 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad index magic"));
        }
        let n_terms = r.varint("term count")? as usize;
        let with_scores = r.byte("score flag")? != 0;
        let mut terms = HashMap::new();
        for _ in 0..n_terms {
            let tlen = r.varint("term length")? as usize;
            let term = std::str::from_utf8(r.take(tlen, "term text")?)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
                .to_string();
            let n_postings = r.varint("posting count")? as usize;
            let mut depths = Vec::new();
            depths.try_reserve(n_postings.min(1 << 24)).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "posting count too large")
            })?;
            for _ in 0..n_postings {
                depths.push(r.varint("depth")? as u16);
            }
            if with_scores {
                r.take(4 * n_postings, "scores")?;
            }
            let n_cols = r.varint("column count")? as usize;
            if n_cols > u16::MAX as usize {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "column count"));
            }
            let mut columns = Vec::with_capacity(n_cols);
            for level0 in 0..n_cols {
                let scheme = match r.byte("scheme")? {
                    0 => Scheme::Delta,
                    1 => Scheme::Rle,
                    x => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("bad scheme byte {x}"),
                        ))
                    }
                };
                let n_blocks = r.varint("block count")? as usize;
                let mut rel = Vec::new();
                rel.try_reserve(n_blocks.min(1 << 22)).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "block count too large")
                })?;
                for _ in 0..n_blocks {
                    let off = r.varint("block offset")?;
                    let first = r.varint("block first value")?;
                    rel.push((off, first));
                }
                let payload_len = r.varint("payload length")? as usize;
                let payload_base = r.offset() as u64;
                r.take(payload_len, "payload")?;
                if let Some(&(last, _)) = rel.last() {
                    if last as usize >= payload_len.max(1) {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "block offset beyond payload",
                        ));
                    }
                }
                let level = (level0 + 1) as u16;
                let present_rows: Vec<u32> = depths
                    .iter()
                    .enumerate()
                    .filter(|(_, &d)| d >= level)
                    .map(|(i, _)| i as u32)
                    .collect();
                let blocks: Vec<(u64, u32, u32)> =
                    rel.iter().map(|&(off, first)| (payload_base + off as u64, first, 0)).collect();
                columns.push(ColumnMeta {
                    scheme,
                    blocks,
                    end: payload_base + payload_len as u64,
                    present_rows,
                });
            }
            terms.insert(term, TermMeta { columns });
        }
        Ok(Self {
            file: RefCell::new(File::open(path)?),
            terms,
            cache: RefCell::new(HashMap::new()),
            block_reads: RefCell::new(0),
        })
    }

    /// The terms available in the store, in sorted order (the backing map
    /// is hashed, so sorting keeps every listing deterministic).
    pub fn term_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.terms.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Number of levels stored for `term` (0 when absent).
    pub fn levels_of(&self, term: &str) -> u16 {
        self.terms.get(term).map(|t| t.columns.len() as u16).unwrap_or(0)
    }

    /// A lazy view over one term's column.
    pub fn column(&self, term: &str, level: u16) -> Option<DiskColumn<'_>> {
        let meta = self.terms.get(term)?;
        let idx = level.checked_sub(1)? as usize;
        if idx >= meta.columns.len() {
            return None;
        }
        Some(DiskColumn { store: self, meta: &meta.columns[idx] })
    }

    /// Total cache-missing block decodes so far.
    pub fn reads(&self) -> u64 {
        *self.block_reads.borrow()
    }

    /// Decodes the runs of one block (cache-aware).  The row coordinates
    /// require knowing how many present rows precede the block, which is
    /// reconstructed by decoding preceding blocks once (they then sit in
    /// the cache); `row_base` carries that prefix count.
    fn decode_block(&self, meta: &ColumnMeta, b: usize, row_base: u32) -> io::Result<Vec<Run>> {
        let Some(&(start, _, _)) = meta.blocks.get(b) else {
            return Err(bad("block index out of range"));
        };
        let key = (start, row_base);
        if let Some(runs) = self.cache.borrow().get(&key) {
            return Ok(runs.clone());
        }
        *self.block_reads.borrow_mut() += 1;
        let end = match meta.blocks.get(b + 1) {
            Some(&(next, _, _)) => next,
            None => meta.end,
        };
        let len = end.checked_sub(start).ok_or_else(|| bad("block offsets not ascending"))?;
        let mut buf = vec![0u8; len as usize];
        {
            let mut f = self.file.borrow_mut();
            f.seek(SeekFrom::Start(start))?;
            f.read_exact(&mut buf)?;
        }
        let mut pos = 4usize;
        let mut prev = match buf.first_chunk::<4>() {
            Some(le) => u32::from_le_bytes(*le),
            None => return Err(bad("truncated block header")),
        };
        let mut runs: Vec<Run> = Vec::new();
        let mut ordinal = row_base;
        let push = |value: u32, count: u32, runs: &mut Vec<Run>, ordinal: &mut u32| -> io::Result<()> {
            for _ in 0..count {
                let row = *meta
                    .present_rows
                    .get(*ordinal as usize)
                    .ok_or_else(|| bad("block rows exceed lengths array"))?;
                *ordinal += 1;
                match runs.last_mut() {
                    Some(last) if last.value == value && last.end() == row => last.len += 1,
                    _ => runs.push(Run { value, start: row, len: 1 }),
                }
            }
            Ok(())
        };
        let varint = |buf: &[u8], pos: &mut usize| -> io::Result<u32> {
            try_read_varint(buf, pos).ok_or_else(|| bad("truncated varint"))
        };
        match meta.scheme {
            Scheme::Delta => {
                push(prev, 1, &mut runs, &mut ordinal)?;
                while pos < buf.len() {
                    prev = prev
                        .checked_add(varint(&buf, &mut pos)?)
                        .ok_or_else(|| bad("value overflow"))?;
                    push(prev, 1, &mut runs, &mut ordinal)?;
                }
            }
            Scheme::Rle => {
                let mut first = true;
                while pos < buf.len() {
                    if !first {
                        prev = prev
                            .checked_add(varint(&buf, &mut pos)?)
                            .ok_or_else(|| bad("value overflow"))?;
                    }
                    first = false;
                    let len = varint(&buf, &mut pos)?;
                    push(prev, len, &mut runs, &mut ordinal)?;
                }
            }
        }
        self.cache.borrow_mut().insert(key, runs.clone());
        Ok(runs)
    }
}

/// Lazy view over one on-disk column.
pub struct DiskColumn<'a> {
    store: &'a DiskColumnStore,
    meta: &'a ColumnMeta,
}

impl DiskColumn<'_> {
    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.meta.blocks.len()
    }

    /// Rows present at this level.
    pub fn row_count(&self) -> usize {
        self.meta.present_rows.len()
    }

    /// Decodes the whole column in block order (the merge-join access
    /// pattern).  Corrupt blocks surface as `InvalidData` errors.
    pub fn scan(&self) -> io::Result<Vec<Run>> {
        let mut out = Vec::new();
        let mut row_base = 0u32;
        for b in 0..self.meta.blocks.len() {
            let runs = self.store.decode_block(self.meta, b, row_base)?;
            row_base += runs.iter().map(|r| r.len).sum::<u32>();
            out.extend(runs);
        }
        Ok(out)
    }

    /// Finds the run for a JDewey `value`, decoding only the block the
    /// sparse keys select — the index-join access pattern.
    ///
    /// Note: locating the block is `O(log blocks)` on the in-memory sparse
    /// keys; exact row coordinates need the present-row prefix count, so
    /// preceding blocks of *this* column are decoded on first touch and
    /// cached (matching the paper's hot-cache regime, where a column
    /// touched by a query is quickly memory-resident).
    pub fn find(&self, value: u32) -> io::Result<Option<Run>> {
        let idx = self.meta.blocks.partition_point(|&(_, first, _)| first <= value);
        let Some(b) = idx.checked_sub(1) else {
            return Ok(None);
        };
        // Row prefix: decode preceding blocks (cached after first touch).
        let mut row_base = 0u32;
        for p in 0..b {
            row_base += self
                .store
                .decode_block(self.meta, p, row_base)?
                .iter()
                .map(|r| r.len)
                .sum::<u32>();
        }
        let runs = self.store.decode_block(self.meta, b, row_base)?;
        let found = runs
            .binary_search_by_key(&value, |r| r.value)
            .ok()
            .and_then(|i| runs.get(i))
            .copied();
        Ok(found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::XmlIndex;
    use crate::disk::{write_index, WriteIndexOptions};
    use xtk_xml::parse;

    fn store() -> (XmlIndex, DiskColumnStore, std::path::PathBuf) {
        let mut xml = String::from("<r>");
        for i in 0..500 {
            xml.push_str(&format!("<p><t>w{} shared</t></p>", i % 37));
        }
        xml.push_str("</r>");
        let ix = XmlIndex::build(parse(&xml).unwrap());
        let path = std::env::temp_dir().join(format!("xtk_diskcol_{}.bin", std::process::id()));
        write_index(&ix, &path, WriteIndexOptions { include_scores: true }).unwrap();
        let store = DiskColumnStore::open(&path).unwrap();
        (ix, store, path)
    }

    #[test]
    fn scan_matches_in_memory_columns() {
        let (ix, store, path) = store();
        for (_, term) in ix.terms() {
            for (li, col) in term.columns.iter().enumerate() {
                let dc = store.column(&term.term, (li + 1) as u16).unwrap();
                assert_eq!(dc.scan().unwrap(), col.runs, "term {} level {}", term.term, li + 1);
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn find_matches_in_memory_find() {
        let (ix, store, path) = store();
        let term = ix.term_by_str("shared").unwrap();
        let dc = store.column("shared", 3).unwrap();
        for run in &term.columns[2].runs {
            assert_eq!(dc.find(run.value).unwrap(), Some(*run));
        }
        assert_eq!(dc.find(999_999).unwrap(), None);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn block_reads_are_counted_and_cached() {
        let (_ix, store, path) = store();
        let dc = store.column("shared", 3).unwrap();
        dc.scan().unwrap();
        let first = store.reads();
        assert!(first >= 1);
        dc.scan().unwrap();
        assert_eq!(store.reads(), first, "second scan served from cache");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_term_or_level() {
        let (_ix, store, path) = store();
        assert!(store.column("zzz_nope", 1).is_none());
        assert!(store.column("shared", 99).is_none());
        assert_eq!(store.levels_of("zzz_nope"), 0);
        std::fs::remove_file(path).ok();
    }
}
