//! Disk-resident column access (paper §III-B, §V).
//!
//! The paper stores the inverted lists "directly on the disk" and runs on
//! a hot cache; crucially, Algorithm 1 "does not read the whole JDewey
//! sequences from the disk at once" — it touches one column at a time,
//! starting from `l_0 = min l_m^i`, and within a column the index join
//! touches only the blocks the sparse index points at.
//!
//! [`DiskColumnStore`] provides exactly that access pattern over the file
//! written by [`crate::disk::write_index`]: per term and level it exposes
//! a [`DiskColumn`] whose `find` decodes **at most one block** (located
//! via the sparse keys and, on format v2, the per-block footers) and
//! whose `scan` decodes blocks lazily in order.
//!
//! Decoded blocks live in a shared, thread-safe [`BlockCache`]
//! (see [`crate::cache`]): by default an unbounded one per store — the
//! paper's hot-cache regime — but [`DiskColumnStore::open_with_cache`]
//! lets several stores and all `Parallelism` workers share one bounded
//! LRU.  The store itself is `Sync`: the file image is an immutable
//! [`ColumnBytes`] sliced zero-copy per block (no seeks, no per-block
//! read buffer), cold decodes run through the per-thread
//! [`DecodeScratch`](crate::codec::DecodeScratch) arena behind a small
//! decode lock that keeps the decode-once discipline, and the counters
//! are atomic — so parallel executors can probe one store from many
//! workers without duplicating decodes.

use crate::bytes::ColumnBytes;
use crate::cache::{Block, BlockCache, CacheStats, ShardedLruCache};
use crate::codec::{decode_block_into, with_decode_scratch, BlockLayout, Scheme};
use crate::columnar::Run;
use crate::disk::{ByteReader, MAGIC_V1, MAGIC_V2, MAGIC_V3};
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("corrupt index file: {what}"))
}

/// Recovers from mutex poisoning: the guarded state (the decode ticket /
/// the cache maps) stays internally consistent between operations, and
/// the panic that poisoned it has already been propagated by the pool.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Format-v2 per-block footers for one column.
#[derive(Debug, Clone)]
struct Footers {
    /// `row_prefix[b]` = number of present rows in blocks `0..b`; one
    /// extra entry at the end holding the column total.
    row_prefix: Vec<u32>,
    /// Largest value stored in each block (`first` is in the directory).
    lasts: Vec<u32>,
}

/// Byte span plus metadata for one column inside the index file.
#[derive(Debug, Clone)]
struct ColumnMeta {
    scheme: Scheme,
    /// `(file offset, first value)` per block.
    blocks: Vec<(u64, u32)>,
    /// One past the last payload byte of the column.
    end: u64,
    /// Rows present at this level (global row ids), needed to reconstruct
    /// run coordinates.  Kept in memory: 4 bytes per present row, the same
    /// information the lengths array encodes.
    present_rows: Vec<u32>,
    /// Present on format v2; `None` forces the legacy prefix-decode path.
    footers: Option<Footers>,
}

/// Per-term metadata in the store.
#[derive(Debug, Clone)]
struct TermMeta {
    columns: Vec<ColumnMeta>,
}

/// Distinguishes stores sharing one cache (see `block_key`).
static NEXT_STORE_ID: AtomicU64 = AtomicU64::new(1);

/// Per-store I/O accounting, attributed to *this* store even when the
/// block cache is shared across stores (the shared [`CacheStats`]
/// conflates every store touching the cache; these counters do not).
///
/// One logical block access counts exactly once: a lookup that finds the
/// block — on the first probe or on the double-checked probe under the
/// decode lock — is a `hit`, anything else is a `miss` followed by one
/// decode, so `misses == decodes` always.  Under an unbounded cache the
/// counts are parallelism-invariant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreIoStats {
    /// Block lookups served from the cache.
    pub hits: u64,
    /// Block lookups that required a decode (`== decodes`).
    pub misses: u64,
    /// Blocks decoded from disk by this store.
    pub decodes: u64,
}

impl StoreIoStats {
    /// Component-wise `self - earlier`, for per-query deltas.
    pub fn since(&self, earlier: &StoreIoStats) -> StoreIoStats {
        StoreIoStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            decodes: self.decodes.saturating_sub(earlier.decodes),
        }
    }

    /// Publishes the counters into a [`MetricsRegistry`](xtk_obs::MetricsRegistry)
    /// under the `store.*` names (add-semantics).
    pub fn publish(&self, metrics: &xtk_obs::MetricsRegistry) {
        metrics.add("store.cache_hits", self.hits);
        metrics.add("store.cache_misses", self.misses);
        metrics.add("store.decodes", self.decodes);
    }
}

/// A per-query I/O counting scope.
///
/// The store's own counters are process-lifetime totals; a "per-query
/// delta" read off them (`io_stats` before/after) silently absorbs the
/// accesses of every *other* query running on the store in the same
/// window — exactly what happens when a batch executes distinct queries
/// in parallel.  A session is instead handed to the column handles of
/// one query ([`DiskColumn::scoped`]) and counts only the accesses made
/// through them, so concurrent queries cannot contaminate each other's
/// numbers.  The counters are atomics: within one query, parallel probe
/// workers share the session and their counts still land in it.
///
/// Under serial execution a session counts the same increments as the
/// global delta did, bit for bit.
#[derive(Debug, Default)]
pub struct IoSession {
    hits: AtomicU64,
    misses: AtomicU64,
    decodes: AtomicU64,
}

impl IoSession {
    /// Snapshot of the accesses counted by this session so far.
    pub fn stats(&self) -> StoreIoStats {
        StoreIoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            decodes: self.decodes.load(Ordering::Relaxed),
        }
    }
}

/// A read-only, block-granular, thread-safe view of a columnar index file.
#[derive(Debug)]
pub struct DiskColumnStore {
    /// Resident file image; every cold block decode slices it zero-copy.
    bytes: ColumnBytes,
    /// Serializes cold decodes so concurrent workers missing on the same
    /// block decode it exactly once (the double-checked `peek` below).
    /// It guards the decode-once *discipline*, not the bytes — those are
    /// immutable and read without locking.
    decode_lock: Mutex<()>,
    /// Physical block layout of the file (varint for v1/v2, packed v3).
    layout: BlockLayout,
    terms: HashMap<String, TermMeta>,
    cache: Arc<dyn BlockCache>,
    /// Cache-missing block decodes performed by this store.
    decodes: AtomicU64,
    /// Block lookups served from the cache for this store.
    hits: AtomicU64,
    /// Block lookups that required a decode by this store.
    misses: AtomicU64,
    /// Disambiguates cache keys when several stores share one cache.
    store_id: u64,
}

impl DiskColumnStore {
    /// Opens an index file with a private unbounded cache — the paper's
    /// hot-cache regime, where every block decodes at most once.
    pub fn open(path: &Path) -> io::Result<Self> {
        Self::open_with_cache(path, Arc::new(ShardedLruCache::unbounded()))
    }

    /// Opens an index file backed by the given block cache.  Pass the same
    /// `Arc` to several stores (or executors) to share one bounded budget;
    /// keys never collide across stores.
    pub fn open_with_cache(path: &Path, cache: Arc<dyn BlockCache>) -> io::Result<Self> {
        Self::open_bytes(ColumnBytes::from_file(path)?, cache)
    }

    /// Opens a store over an already-resident file image — the zero-copy
    /// entry point: the same [`ColumnBytes::Shared`] buffer can back any
    /// number of stores without duplicating the payload.
    pub fn open_bytes(bytes: ColumnBytes, cache: Arc<dyn BlockCache>) -> io::Result<Self> {
        // The format is sequential, so one pass builds the directory; the
        // payload bytes are skipped over (and later sliced per block,
        // never copied).  All reads are bounds-checked so corrupt files
        // fail with InvalidData instead of panicking.
        let mut r = ByteReader::new(bytes.as_slice());
        let magic = r.varint("magic")?;
        let (has_footers, layout) = match magic {
            MAGIC_V1 => (false, BlockLayout::Varint),
            MAGIC_V2 => (true, BlockLayout::Varint),
            MAGIC_V3 => (true, BlockLayout::Packed),
            _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad index magic")),
        };
        let n_terms = r.varint("term count")? as usize;
        let with_scores = r.byte("score flag")? != 0;
        let mut terms = HashMap::new();
        for _ in 0..n_terms {
            let tlen = r.varint("term length")? as usize;
            let term = std::str::from_utf8(r.take(tlen, "term text")?)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
                .to_string();
            let n_postings = r.varint("posting count")? as usize;
            // lint:allow(L8, open-time directory parse — one vec per term, never on the block-decode path)
            let mut depths = Vec::new();
            depths.try_reserve(n_postings.min(1 << 24)).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "posting count too large")
            })?;
            for _ in 0..n_postings {
                depths.push(r.varint("depth")? as u16);
            }
            if with_scores {
                r.take(4 * n_postings, "scores")?;
            }
            let n_cols = r.varint("column count")? as usize;
            if n_cols > u16::MAX as usize {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "column count"));
            }
            let mut columns = Vec::with_capacity(n_cols);
            for level0 in 0..n_cols {
                let scheme = match r.byte("scheme")? {
                    0 => Scheme::Delta,
                    1 => Scheme::Rle,
                    x => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            // lint:allow(L8, error construction on the corrupt-file bail-out)
                            format!("bad scheme byte {x}"),
                        ))
                    }
                };
                let n_blocks = r.varint("block count")? as usize;
                // lint:allow(L8, open-time directory parse — per-column metadata vecs, never on the block-decode path)
                let mut rel = Vec::new();
                rel.try_reserve(n_blocks.min(1 << 22)).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "block count too large")
                })?;
                // lint:allow(L8, open-time directory parse — per-column metadata vecs, never on the block-decode path)
                let mut rows = Vec::new();
                // lint:allow(L8, open-time directory parse — per-column metadata vecs, never on the block-decode path)
                let mut lasts = Vec::new();
                for _ in 0..n_blocks {
                    let off = r.varint("block offset")?;
                    let first = r.varint("block first value")?;
                    rel.push((off, first));
                    if has_footers {
                        rows.push(r.varint("block row count")?);
                        let span = r.varint("block last-value delta")?;
                        lasts.push(
                            first.checked_add(span).ok_or_else(|| bad("block last overflow"))?,
                        );
                    }
                }
                let payload_len = r.varint("payload length")? as usize;
                let payload_base = r.offset() as u64;
                r.take(payload_len, "payload")?;
                if let Some(&(last, _)) = rel.last() {
                    if last as usize >= payload_len.max(1) {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "block offset beyond payload",
                        ));
                    }
                }
                let level = (level0 + 1) as u16;
                let present_rows: Vec<u32> = depths
                    .iter()
                    .enumerate()
                    .filter(|(_, &d)| d >= level)
                    .map(|(i, _)| i as u32)
                    // lint:allow(L8, open-time directory parse — the per-level lengths array is built once per open)
                    .collect();
                let footers = if has_footers {
                    // Prefix-sum the row counts; reject footers that
                    // disagree with the lengths array so a corrupt
                    // directory cannot misplace rows silently.
                    let mut row_prefix = Vec::with_capacity(rows.len() + 1);
                    let mut acc = 0u64;
                    row_prefix.push(0);
                    for &n in &rows {
                        acc += n as u64;
                        if acc > present_rows.len() as u64 {
                            return Err(bad("block row counts exceed lengths array"));
                        }
                        row_prefix.push(acc as u32);
                    }
                    if acc != present_rows.len() as u64 {
                        return Err(bad("block row counts disagree with lengths array"));
                    }
                    Some(Footers { row_prefix, lasts })
                } else {
                    None
                };
                columns.push(ColumnMeta {
                    scheme,
                    // lint:allow(L8, open-time directory parse — absolute block offsets built once per open)
                    blocks: rel.iter().map(|&(off, first)| (payload_base + off as u64, first)).collect(),
                    end: payload_base + payload_len as u64,
                    present_rows,
                    footers,
                });
            }
            terms.insert(term, TermMeta { columns });
        }
        Ok(Self {
            bytes,
            decode_lock: Mutex::new(()),
            layout,
            terms,
            cache,
            decodes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            store_id: NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed),
        })
    }

    /// The terms available in the store, in sorted order (the backing map
    /// is hashed, so sorting keeps every listing deterministic).
    pub fn term_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.terms.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Number of levels stored for `term` (0 when absent).
    pub fn levels_of(&self, term: &str) -> u16 {
        self.terms.get(term).map(|t| t.columns.len() as u16).unwrap_or(0)
    }

    /// A lazy view over one term's column.
    pub fn column(&self, term: &str, level: u16) -> Option<DiskColumn<'_>> {
        let meta = self.terms.get(term)?;
        let idx = level.checked_sub(1)? as usize;
        let meta = meta.columns.get(idx)?;
        Some(DiskColumn { store: self, meta, session: None })
    }

    /// Total cache-missing block decodes performed by this store.
    pub fn reads(&self) -> u64 {
        self.decodes.load(Ordering::Relaxed)
    }

    /// Per-store I/O counters (see [`StoreIoStats`] for the attribution
    /// rules).  Unlike [`cache_stats`](Self::cache_stats) these never mix
    /// in accesses made by other stores sharing the cache.
    pub fn io_stats(&self) -> StoreIoStats {
        StoreIoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            decodes: self.decodes.load(Ordering::Relaxed),
        }
    }

    /// The id salting this store's cache keys; also used to label
    /// per-store trace events.
    pub fn store_id(&self) -> u64 {
        self.store_id
    }

    /// Counters of the backing block cache (shared counters when the
    /// cache is shared).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The backing cache, for sharing with further stores.
    pub fn shared_cache(&self) -> Arc<dyn BlockCache> {
        Arc::clone(&self.cache)
    }

    /// Warms and pins every block of every level column of `term`: blocks
    /// not yet resident are decoded (counted as ordinary misses/decodes),
    /// then pinned so batch execution cannot evict its own prefetched
    /// working set.  Returns the number of blocks successfully pinned —
    /// less than the block count only when the cache policy cannot pin or
    /// a tiny capacity evicts a block between insert and pin.  Absent
    /// terms prefetch nothing.  Balance with
    /// [`DiskColumnStore::unpin_term`].
    pub fn prefetch_term(&self, term: &str) -> io::Result<u64> {
        let Some(meta) = self.terms.get(term) else {
            return Ok(0);
        };
        let mut pinned = 0u64;
        for col in &meta.columns {
            let mut row_base = 0u32;
            for b in 0..col.blocks.len() {
                let runs = self.decode_block(col, b, row_base, None)?;
                row_base = row_base
                    .checked_add(runs.iter().map(|r| r.len).sum::<u32>())
                    .ok_or_else(|| bad("row count overflow"))?;
                if let Some(&(start, _)) = col.blocks.get(b) {
                    pinned += u64::from(self.cache.pin(self.block_key(start)));
                }
            }
        }
        Ok(pinned)
    }

    /// Releases one pin on every block of `term`'s columns (the inverse of
    /// [`DiskColumnStore::prefetch_term`]); unknown terms and never-pinned
    /// blocks are no-ops.
    pub fn unpin_term(&self, term: &str) {
        let Some(meta) = self.terms.get(term) else {
            return;
        };
        for col in &meta.columns {
            for &(start, _) in &col.blocks {
                self.cache.unpin(self.block_key(start));
            }
        }
    }

    /// Distinct blocks currently pinned in the backing cache (shared
    /// counter when the cache is shared across stores).
    pub fn pinned_blocks(&self) -> u64 {
        self.cache.pinned_blocks()
    }

    /// Cache key for the block starting at file offset `start`: offsets
    /// identify blocks within a file, the store id separates files.
    fn block_key(&self, start: u64) -> u64 {
        (self.store_id << 48) ^ start
    }

    /// One cache-served block lookup: counted in the store totals and,
    /// when the access happens inside a query scope, in its session.
    fn count_hit(&self, session: Option<&IoSession>) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        if let Some(s) = session {
            s.hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One cold block lookup (miss + decode), same dual attribution.
    fn count_miss(&self, session: Option<&IoSession>) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.decodes.fetch_add(1, Ordering::Relaxed);
        if let Some(s) = session {
            s.misses.fetch_add(1, Ordering::Relaxed);
            s.decodes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Decodes the runs of one block (cache-aware).  `row_base` is the
    /// number of present rows in all preceding blocks of the column; the
    /// caller obtains it in O(1) from the v2/v3 footers or by decoding
    /// the prefix on v1 files.
    ///
    /// The block bytes are a zero-copy slice of the resident file image,
    /// decoded through the per-thread scratch arena and frozen into the
    /// cached `Arc<[Run]>` only once finished.  The decode lock is held
    /// across decode + insert, so concurrent workers missing on the same
    /// block decode it exactly once — `reads()` stays deterministic under
    /// an unbounded cache no matter the worker count.
    fn decode_block(
        &self,
        meta: &ColumnMeta,
        b: usize,
        row_base: u32,
        session: Option<&IoSession>,
    ) -> io::Result<Block> {
        let Some(&(start, _)) = meta.blocks.get(b) else {
            return Err(bad("block index out of range"));
        };
        let key = self.block_key(start);
        if let Some(runs) = self.cache.get(key) {
            self.count_hit(session);
            return Ok(runs);
        }
        let _decode = relock(&self.decode_lock);
        // Double-check: another worker may have decoded this block while
        // we waited for the decode lock.  `peek` so the shared cache does
        // not count the same logical access twice.
        if let Some(runs) = self.cache.peek(key) {
            self.count_hit(session);
            return Ok(runs);
        }
        self.count_miss(session);
        let end = match meta.blocks.get(b + 1) {
            Some(&(next, _)) => next,
            None => meta.end,
        };
        let len = end.checked_sub(start).ok_or_else(|| bad("block offsets not ascending"))?;
        let len = usize::try_from(len).map_err(|_| bad("block length overflow"))?;
        let block_bytes = self.bytes.slice(start, len).ok_or_else(|| bad("block beyond file"))?;
        let present = meta
            .present_rows
            .get(row_base as usize..)
            .ok_or_else(|| bad("row base beyond lengths array"))?;
        let block: Block = with_decode_scratch(|scratch| {
            scratch.runs.clear();
            decode_block_into(meta.scheme, self.layout, block_bytes, present, scratch)
                .map(|_| Block::from(scratch.runs.as_slice()))
        })
        .ok_or_else(|| bad("inconsistent block payload"))?;
        self.cache.insert(key, Arc::clone(&block));
        Ok(block)
    }
}

/// Lazy view over one on-disk column.
pub struct DiskColumn<'a> {
    store: &'a DiskColumnStore,
    meta: &'a ColumnMeta,
    /// Query scope the accesses through this handle are attributed to
    /// (besides the store totals); `None` outside query execution.
    session: Option<&'a IoSession>,
}

impl<'a> DiskColumn<'a> {
    /// Attributes every access through this handle to `session` (in
    /// addition to the store totals) — one session per query execution
    /// keeps per-query I/O deltas exact even when several queries run on
    /// the store concurrently.
    pub fn scoped(mut self, session: &'a IoSession) -> DiskColumn<'a> {
        self.session = Some(session);
        self
    }
}

impl DiskColumn<'_> {
    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.meta.blocks.len()
    }

    /// Compression scheme of this column (delta vs RLE), for workload
    /// labeling in benches and tests.
    pub fn scheme(&self) -> Scheme {
        self.meta.scheme
    }

    /// Rows present at this level.
    pub fn row_count(&self) -> usize {
        self.meta.present_rows.len()
    }

    /// The `[first, last]` JDewey value range this column covers, read
    /// from the directory first values and the v2/v3 footer last values
    /// without decoding anything.  `None` for empty columns and for v1
    /// files (no footers), where the span would require a decode.
    pub fn value_span(&self) -> Option<(u32, u32)> {
        let &(_, first) = self.meta.blocks.first()?;
        let &last = self.meta.footers.as_ref()?.lasts.last()?;
        Some((first, last))
    }

    /// Decodes the whole column in block order (the merge-join access
    /// pattern).  Corrupt blocks surface as `InvalidData` errors.
    pub fn scan(&self) -> io::Result<Vec<Run>> {
        let mut out = Vec::new();
        let mut row_base = 0u32;
        for b in 0..self.meta.blocks.len() {
            let runs = self.store.decode_block(self.meta, b, row_base, self.session)?;
            row_base = row_base
                .checked_add(runs.iter().map(|r| r.len).sum::<u32>())
                .ok_or_else(|| bad("row count overflow"))?;
            out.extend_from_slice(&runs);
        }
        Ok(out)
    }

    /// Decodes only the blocks whose value range can contain one of the
    /// **ascending** probe `values`, returning their runs in block order
    /// — the merge-join access pattern with footer block skipping.
    ///
    /// A block is decoded iff some probe falls inside `[first, last]`
    /// (directory first value, footer last value), so the result is the
    /// exact subset of [`scan`](Self::scan) that can match any probe;
    /// galloping over it finds the same runs the full scan would.  The
    /// row prefix of each decoded block comes from the v2/v3 footers in
    /// O(1); files without footers (v1) fall back to the full scan.
    pub fn scan_matching(&self, values: &[u32]) -> io::Result<Vec<Run>> {
        let Some(f) = &self.meta.footers else {
            return self.scan();
        };
        let mut out = Vec::new();
        let mut vi = 0usize;
        for (b, &(_, first)) in self.meta.blocks.iter().enumerate() {
            // Probes are ascending: ones below this block's first value
            // can no longer match here or in any later block.
            while values.get(vi).is_some_and(|&v| v < first) {
                vi += 1;
            }
            match values.get(vi) {
                Some(&v) => {
                    let Some(&last) = f.lasts.get(b) else {
                        return Err(bad("footer lasts out of range"));
                    };
                    if v > last {
                        continue; // definite miss: skip the decode
                    }
                    let row_base = *f
                        .row_prefix
                        .get(b)
                        .ok_or_else(|| bad("footer prefix out of range"))?;
                    let runs =
                        self.store.decode_block(self.meta, b, row_base, self.session)?;
                    out.extend_from_slice(&runs);
                }
                None => break, // probes exhausted
            }
        }
        Ok(out)
    }

    /// Finds the run for a JDewey `value`, decoding **at most one block**
    /// — the index-join access pattern.
    ///
    /// On format v2 the block's row prefix comes from the footers in
    /// O(1), and a probe outside the block's `[first, last]` value range
    /// returns `None` without decoding anything.  On v1 files the row
    /// prefix requires decoding the preceding blocks of this column once
    /// (they then sit in the cache) — the legacy behaviour kept for
    /// compatibility and as the bench ablation baseline.
    pub fn find(&self, value: u32) -> io::Result<Option<Run>> {
        let idx = self.meta.blocks.partition_point(|&(_, first)| first <= value);
        let Some(b) = idx.checked_sub(1) else {
            return Ok(None);
        };
        let row_base = match &self.meta.footers {
            Some(f) => {
                // Definite miss: the probe is beyond the block's last
                // value (and below the next block's first) — skip the
                // decode outright.
                if f.lasts.get(b).is_some_and(|&last| value > last) {
                    return Ok(None);
                }
                *f.row_prefix.get(b).ok_or_else(|| bad("footer prefix out of range"))?
            }
            None => {
                // v1: decode preceding blocks (cached after first touch).
                let mut row_base = 0u32;
                for p in 0..b {
                    let prefix = self.store.decode_block(self.meta, p, row_base, self.session)?;
                    row_base = row_base
                        .checked_add(prefix.iter().map(|r| r.len).sum::<u32>())
                        .ok_or_else(|| bad("row count overflow"))?;
                }
                row_base
            }
        };
        let runs = self.store.decode_block(self.meta, b, row_base, self.session)?;
        let found = runs
            .binary_search_by_key(&value, |r| r.value)
            .ok()
            .and_then(|i| runs.get(i))
            .copied();
        Ok(found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::XmlIndex;
    use crate::cache::CacheCapacity;
    use crate::disk::{write_index, FormatVersion, WriteIndexOptions};
    use xtk_xml::parse;

    fn corpus() -> XmlIndex {
        let mut xml = String::from("<r>");
        for i in 0..500 {
            xml.push_str(&format!("<p><t>w{} shared</t></p>", i % 37));
        }
        xml.push_str("</r>");
        XmlIndex::build(parse(&xml).unwrap())
    }

    fn store_v(tag: &str, format: FormatVersion) -> (XmlIndex, DiskColumnStore, std::path::PathBuf) {
        let ix = corpus();
        let path = std::env::temp_dir()
            .join(format!("xtk_diskcol_{tag}_{}.bin", std::process::id()));
        write_index(&ix, &path, WriteIndexOptions { include_scores: true, format }).unwrap();
        let store = DiskColumnStore::open(&path).unwrap();
        (ix, store, path)
    }

    fn store(tag: &str) -> (XmlIndex, DiskColumnStore, std::path::PathBuf) {
        store_v(tag, FormatVersion::V2)
    }

    #[test]
    fn store_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<DiskColumnStore>();
    }

    #[test]
    fn scan_matches_in_memory_columns() {
        for format in [FormatVersion::V1, FormatVersion::V2, FormatVersion::V3] {
            let (ix, store, path) = store_v("scan", format);
            for (_, term) in ix.terms() {
                for (li, col) in term.columns.iter().enumerate() {
                    let dc = store.column(&term.term, (li + 1) as u16).unwrap();
                    assert_eq!(
                        dc.scan().unwrap(),
                        col.runs,
                        "term {} level {} {format:?}",
                        term.term,
                        li + 1
                    );
                }
            }
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn scan_matching_skips_blocks_but_keeps_probed_runs() {
        for format in [FormatVersion::V1, FormatVersion::V2, FormatVersion::V3] {
            let (ix, store, path) = store_v("scanmatch", format);
            let term = ix.term_by_str("shared").unwrap();
            let col = &term.columns[2];
            let dc = store.column("shared", 3).unwrap();
            // Probe a sparse ascending subset (every 7th distinct value,
            // plus misses between them).
            let mut probes: Vec<u32> = col.runs.iter().step_by(7).map(|r| r.value).collect();
            probes.extend(col.runs.iter().step_by(11).map(|r| r.value + 1));
            probes.sort_unstable();
            probes.dedup();
            let sub = dc.scan_matching(&probes).unwrap();
            let full = dc.scan().unwrap();
            // Subset of the full scan, in order.
            let mut fi = 0usize;
            for r in &sub {
                while fi < full.len() && full[fi] != *r {
                    fi += 1;
                }
                assert!(fi < full.len(), "{format:?}: run {r:?} not in scan order");
            }
            // Every probed value that exists in the column is present.
            for r in &col.runs {
                if probes.binary_search(&r.value).is_ok() {
                    assert!(sub.contains(r), "{format:?}: probed run {r:?} missing");
                }
            }
            // Footer formats skip at least the blocks past the last probe
            // when the probe set is empty.
            assert!(dc.scan_matching(&[]).unwrap().is_empty() || format == FormatVersion::V1);
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn find_matches_in_memory_find() {
        for format in [FormatVersion::V1, FormatVersion::V2, FormatVersion::V3] {
            let (ix, store, path) = store_v("find", format);
            let term = ix.term_by_str("shared").unwrap();
            let dc = store.column("shared", 3).unwrap();
            for run in &term.columns[2].runs {
                assert_eq!(dc.find(run.value).unwrap(), Some(*run), "{format:?}");
            }
            assert_eq!(dc.find(999_999).unwrap(), None);
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn prefetch_pins_all_blocks_and_later_probes_decode_nothing() {
        let (_ix, store, path) = store("prefetch");
        let total_blocks: usize = (1..=store.levels_of("shared"))
            .filter_map(|l| store.column("shared", l))
            .map(|dc| dc.block_count())
            .sum();
        let pinned = store.prefetch_term("shared").unwrap();
        assert_eq!(pinned as usize, total_blocks, "every block warmed and pinned");
        assert_eq!(store.pinned_blocks(), pinned);
        let decodes = store.reads();
        // Every subsequent access is a cache hit: zero further decodes.
        let dc = store.column("shared", 3).unwrap();
        dc.scan().unwrap();
        dc.find(1).unwrap();
        assert_eq!(store.reads(), decodes, "prefetched column never re-decodes");
        // Re-prefetching a warm term decodes nothing and nests pins.
        let again = store.prefetch_term("shared").unwrap();
        assert_eq!(again, pinned);
        assert_eq!(store.reads(), decodes);
        store.unpin_term("shared");
        store.unpin_term("shared");
        assert_eq!(store.pinned_blocks(), 0);
        // Absent terms are a no-op on both sides.
        assert_eq!(store.prefetch_term("no-such-term").unwrap(), 0);
        store.unpin_term("no-such-term");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn block_reads_are_counted_and_cached() {
        let (_ix, store, path) = store("counted");
        let dc = store.column("shared", 3).unwrap();
        dc.scan().unwrap();
        let first = store.reads();
        assert!(first >= 1);
        dc.scan().unwrap();
        assert_eq!(store.reads(), first, "second scan served from cache");
        let stats = store.cache_stats();
        assert!(stats.hits >= first, "{stats:?}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn cold_find_decodes_at_most_one_block() {
        // The satellite regression: a v2 probe must not decode the
        // preceding blocks of the column to locate its row prefix.
        let mut xml = String::from("<r>");
        for i in 0..6000 {
            xml.push_str(&format!("<p><t>dense x{i}</t></p>"));
        }
        xml.push_str("</r>");
        let ix = XmlIndex::build(parse(&xml).unwrap());
        let path = std::env::temp_dir()
            .join(format!("xtk_diskcol_cold_{}.bin", std::process::id()));
        write_index(&ix, &path, WriteIndexOptions::default()).unwrap();

        let store = DiskColumnStore::open(&path).unwrap();
        let dc = store.column("dense", 2).unwrap();
        assert!(dc.block_count() > 1, "corpus must span several blocks");
        // Probe a value that lives in the LAST block of a cold store.
        let target = ix.term_by_str("dense").unwrap().columns[1].runs.last().unwrap().value;
        assert!(dc.find(target).unwrap().is_some());
        assert_eq!(store.reads(), 1, "cold probe decodes exactly one block");
        // A probe beyond every stored value decodes nothing: the footers
        // prove the last block cannot contain it.
        let reads = store.reads();
        assert_eq!(dc.find(target + 1).unwrap(), None);
        assert_eq!(store.reads(), reads, "out-of-range probe is free");

        // The v1 ablation: same probe decodes the whole prefix.
        let path1 = std::env::temp_dir()
            .join(format!("xtk_diskcol_cold_v1_{}.bin", std::process::id()));
        write_index(
            &ix,
            &path1,
            WriteIndexOptions { include_scores: false, format: FormatVersion::V1 },
        )
        .unwrap();
        let store1 = DiskColumnStore::open(&path1).unwrap();
        let dc1 = store1.column("dense", 2).unwrap();
        assert!(dc1.find(target).unwrap().is_some());
        assert_eq!(
            store1.reads(),
            dc1.block_count() as u64,
            "v1 pays the whole prefix for a last-block probe"
        );
        std::fs::remove_file(path).ok();
        std::fs::remove_file(path1).ok();
    }

    #[test]
    fn value_gap_probe_skips_decode() {
        // A probe that falls between a block's last value and the next
        // block's first value must return None with zero decodes.
        let mut xml = String::from("<r>");
        for i in 0..6000 {
            // Even node numbers only, so odd probes can miss.
            xml.push_str(&format!("<p><t>gap g{i}</t></p>"));
        }
        xml.push_str("</r>");
        let ix = XmlIndex::build(parse(&xml).unwrap());
        let path = std::env::temp_dir()
            .join(format!("xtk_diskcol_gap_{}.bin", std::process::id()));
        write_index(&ix, &path, WriteIndexOptions::default()).unwrap();
        let store = DiskColumnStore::open(&path).unwrap();
        // Level 1 of "gap" is a single highly-duplicated run; use the
        // leaf level, where block boundaries leave value gaps.
        let levels = store.levels_of("gap");
        let dc = store.column("gap", levels).unwrap();
        let col = &ix.term_by_str("gap").unwrap().columns[levels as usize - 1];
        // Find a value absent from the column.
        let absent = (0..u32::MAX).find(|v| col.find(*v).is_none()).unwrap();
        let before = store.reads();
        let r = dc.find(absent).unwrap();
        assert_eq!(r, None);
        // Either skipped via footers (0 decodes) or decoded exactly one
        // block (when the absent value falls inside a block's range).
        assert!(store.reads() - before <= 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn shared_cache_and_parallel_probes_decode_once() {
        let (ix, _unused, path) = store("parprobe");
        let cache: Arc<dyn BlockCache> = Arc::new(ShardedLruCache::new(CacheCapacity::Unbounded));
        let store = DiskColumnStore::open_with_cache(&path, Arc::clone(&cache)).unwrap();
        let term = ix.term_by_str("shared").unwrap();
        let values: Vec<u32> = term.columns[2].runs.iter().map(|r| r.value).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let store = &store;
                let values = &values;
                s.spawn(move || {
                    let dc = store.column("shared", 3).unwrap();
                    for &v in values {
                        assert!(dc.find(v).unwrap().is_some());
                    }
                });
            }
        });
        let dc = store.column("shared", 3).unwrap();
        assert!(
            store.reads() <= dc.block_count() as u64,
            "4 workers probing every value decode each block at most once: {} reads, {} blocks",
            store.reads(),
            dc.block_count()
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bounded_cache_still_returns_exact_results() {
        let (ix, _unused, path) = store("bounded");
        for cache in [
            Arc::new(ShardedLruCache::with_block_capacity(1)) as Arc<dyn BlockCache>,
            Arc::new(ShardedLruCache::with_byte_capacity(1 << 14)) as Arc<dyn BlockCache>,
        ] {
            let store = DiskColumnStore::open_with_cache(&path, cache).unwrap();
            for (_, term) in ix.terms() {
                for (li, col) in term.columns.iter().enumerate() {
                    let dc = store.column(&term.term, (li + 1) as u16).unwrap();
                    assert_eq!(dc.scan().unwrap(), col.runs);
                    for run in col.runs.iter().take(8) {
                        assert_eq!(dc.find(run.value).unwrap(), Some(*run));
                    }
                }
            }
            let stats = store.cache_stats();
            assert!(stats.evictions > 0, "tiny cache must evict: {stats:?}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn one_logical_access_counts_once() {
        // Regression for the PR-4 satellite bugfix: the double-checked
        // lookup under the file lock used to record a *second* miss per
        // decode, so a serial cold scan reported misses == 2 * decodes.
        let (_ix, store, path) = store("misscount");
        let dc = store.column("shared", 3).unwrap();
        dc.scan().unwrap();
        let io = store.io_stats();
        assert_eq!(io.misses, io.decodes, "misses must equal decodes: {io:?}");
        assert_eq!(io.hits, 0, "cold scan has no hits: {io:?}");
        let cs = store.cache_stats();
        assert_eq!(cs.misses, io.misses, "shared-cache misses match per-store: {cs:?}");
        dc.scan().unwrap();
        let io2 = store.io_stats();
        assert_eq!(io2.decodes, io.decodes, "warm scan decodes nothing");
        assert!(io2.hits > 0);
        assert_eq!(io2.since(&io).misses, 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn per_store_attribution_with_shared_cache() {
        // Two stores over the same file sharing one cache: the shared
        // CacheStats conflates them (salted keys), io_stats() does not.
        let (_ix, first, path) = store("attrib");
        let second =
            DiskColumnStore::open_with_cache(&path, first.shared_cache()).unwrap();
        first.column("shared", 3).unwrap().scan().unwrap();
        second.column("shared", 3).unwrap().scan().unwrap();
        let a = first.io_stats();
        let b = second.io_stats();
        assert_eq!(a.decodes, b.decodes, "same column, same block count");
        assert!(a.decodes > 0);
        let shared = first.cache_stats();
        assert_eq!(shared.misses, a.misses + b.misses, "{shared:?}");
        let reg = xtk_obs::MetricsRegistry::new();
        a.publish(&reg);
        b.publish(&reg);
        assert_eq!(reg.snapshot().get("store.decodes"), a.decodes + b.decodes);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn shared_file_image_backs_many_stores() {
        // Zero-copy open: two stores over one Arc'd file image, no
        // per-store copy of the payload, identical results.
        let (ix, _unused, path) = store("sharedbytes");
        let image: Arc<[u8]> = std::fs::read(&path).unwrap().into();
        let cache: Arc<dyn BlockCache> = Arc::new(ShardedLruCache::unbounded());
        let a = DiskColumnStore::open_bytes(ColumnBytes::from(image.clone()), Arc::clone(&cache))
            .unwrap();
        let b = DiskColumnStore::open_bytes(ColumnBytes::from(image), cache).unwrap();
        let col = &ix.term_by_str("shared").unwrap().columns[2];
        assert_eq!(a.column("shared", 3).unwrap().scan().unwrap(), col.runs);
        assert_eq!(b.column("shared", 3).unwrap().scan().unwrap(), col.runs);
        assert_ne!(a.store_id(), b.store_id(), "cache keys stay disjoint");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_term_or_level() {
        let (_ix, store, path) = store("missing");
        assert!(store.column("zzz_nope", 1).is_none());
        assert!(store.column("shared", 99).is_none());
        assert_eq!(store.levels_of("zzz_nope"), 0);
        std::fs::remove_file(path).ok();
    }
}
