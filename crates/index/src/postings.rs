//! Document-order posting lists and the neighbor searches the baseline
//! algorithms perform on them.
//!
//! Postings are stored as `Vec<NodeId>`: the arena is in pre-order, so
//! `NodeId` order *is* document order *is* Dewey order, and the
//! "closest occurrence" searches of the index-based algorithms (Xu &
//! Papakonstantinou's `lm`/`rm`) reduce to binary searches on node ids.

use xtk_xml::tree::NodeId;

/// Rightmost posting `<= v` in document order (`lm(S, v)` in the
/// index-based algorithms), if any.
pub fn left_match(postings: &[NodeId], v: NodeId) -> Option<NodeId> {
    let idx = postings.partition_point(|&p| p <= v);
    idx.checked_sub(1).map(|i| postings[i])
}

/// Leftmost posting `>= v` in document order (`rm(S, v)`), if any.
pub fn right_match(postings: &[NodeId], v: NodeId) -> Option<NodeId> {
    postings.get(postings.partition_point(|&p| p < v)).copied()
}

/// The sub-slice of postings whose nodes lie in the doc-order id range
/// `[lo, hi)` — i.e. inside one subtree when `lo..hi` is the subtree's
/// arena range.
pub fn postings_in_range(postings: &[NodeId], lo: NodeId, hi_exclusive: NodeId) -> &[NodeId] {
    let a = postings.partition_point(|&p| p < lo);
    let b = postings.partition_point(|&p| p < hi_exclusive);
    &postings[a..b]
}

/// Count of postings in `[lo, hi)` without materialising the slice.
pub fn count_in_range(postings: &[NodeId], lo: NodeId, hi_exclusive: NodeId) -> usize {
    postings_in_range(postings, lo, hi_exclusive).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&x| NodeId(x)).collect()
    }

    #[test]
    fn left_and_right_match() {
        let p = ids(&[2, 5, 9, 14]);
        assert_eq!(left_match(&p, NodeId(5)), Some(NodeId(5)));
        assert_eq!(left_match(&p, NodeId(6)), Some(NodeId(5)));
        assert_eq!(left_match(&p, NodeId(1)), None);
        assert_eq!(right_match(&p, NodeId(5)), Some(NodeId(5)));
        assert_eq!(right_match(&p, NodeId(6)), Some(NodeId(9)));
        assert_eq!(right_match(&p, NodeId(15)), None);
    }

    #[test]
    fn range_queries() {
        let p = ids(&[2, 5, 9, 14]);
        assert_eq!(postings_in_range(&p, NodeId(3), NodeId(10)), &ids(&[5, 9])[..]);
        assert_eq!(count_in_range(&p, NodeId(0), NodeId(100)), 4);
        assert_eq!(count_in_range(&p, NodeId(6), NodeId(9)), 0);
        assert_eq!(count_in_range(&p, NodeId(9), NodeId(10)), 1);
    }

    #[test]
    fn empty_list() {
        let p: Vec<NodeId> = vec![];
        assert_eq!(left_match(&p, NodeId(3)), None);
        assert_eq!(right_match(&p, NodeId(3)), None);
        assert_eq!(count_in_range(&p, NodeId(0), NodeId(9)), 0);
    }
}
