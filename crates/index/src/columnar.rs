//! Column-oriented JDewey inverted lists (paper §III-A, Fig. 2(a)).
//!
//! A keyword's inverted list is the sequence of JDewey sequences of the
//! nodes directly containing it, sorted in JDewey order (= document order).
//! Stored by column: column `l` holds, for every posting whose node is at
//! depth `>= l`, the JDewey number of its level-`l` ancestor.
//!
//! Because the list is sorted, every column is itself sorted
//! (Property 3.1), and equal numbers are **contiguous** — so a column is
//! represented as a vector of [`Run`]s `(value, start_row, len)`, which is
//! exactly the paper's second compression scheme made into the in-memory
//! layout.  Rows are global posting indices, so a run in column `l-1`
//! either *contains* or is *disjoint from* any run in column `l`
//! (§III-E: the partial-overlap cases of Fig. 4(b) cannot occur), the
//! property range checking relies on.

use xtk_xml::jdewey::JDeweyAssignment;
use xtk_xml::tree::{NodeId, XmlTree};

/// A maximal group of consecutive rows sharing one JDewey number at one
/// level — the in-memory form of the paper's `(v, r, c)` triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// The shared JDewey number (identifies the ancestor node at this
    /// column's level).
    pub value: u32,
    /// First global row (posting index) of the run.
    pub start: u32,
    /// Number of rows in the run (>= 1).
    pub len: u32,
}

impl Run {
    /// One-past-the-end row of the run.
    #[inline]
    pub fn end(&self) -> u32 {
        self.start + self.len
    }

    /// Row range covered by the run.
    #[inline]
    pub fn rows(&self) -> std::ops::Range<u32> {
        self.start..self.end()
    }
}

/// One column of a keyword's inverted list: the level-`l` JDewey numbers of
/// all postings at depth `>= l`, as sorted runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Column {
    /// Runs in increasing `value` (and `start`) order.
    pub runs: Vec<Run>,
}

impl Column {
    /// Total number of rows present at this level.
    pub fn row_count(&self) -> u64 {
        self.runs.iter().map(|r| r.len as u64).sum()
    }

    /// Number of distinct JDewey numbers in the column.
    #[inline]
    pub fn distinct(&self) -> usize {
        self.runs.len()
    }

    /// Binary-searches the run with the given JDewey number.
    pub fn find(&self, value: u32) -> Option<&Run> {
        self.runs
            .binary_search_by_key(&value, |r| r.value)
            .ok()
            .map(|i| &self.runs[i])
    }

    /// Index of the first run with `value >= v` (for merge restarts and
    /// index joins).
    pub fn lower_bound(&self, v: u32) -> usize {
        self.runs.partition_point(|r| r.value < v)
    }

    /// The JDewey number of a given global row at this level, if the row is
    /// present (its posting is at least this deep).
    pub fn value_of_row(&self, row: u32) -> Option<u32> {
        let i = self.runs.partition_point(|r| r.end() <= row);
        match self.runs.get(i) {
            Some(r) if r.start <= row => Some(r.value),
            _ => None,
        }
    }

    /// [`find`](Self::find) with a galloping restart: searches from run
    /// index `hint` (validated, so a stale hint is safe) and returns the
    /// lower-bound index alongside the hit, for the caller to carry as
    /// the next hint.  With ascending probe values the whole probe
    /// sequence costs O(m log(n/m)) instead of O(m log n).
    pub fn find_hinted(&self, value: u32, hint: usize) -> (usize, Option<&Run>) {
        let from = if hint == 0
            || self.runs.get(hint.wrapping_sub(1)).is_some_and(|r| r.value < value)
        {
            hint.min(self.runs.len())
        } else {
            0 // stale hint (probe went backwards): restart
        };
        let lb = gallop_lower_bound(&self.runs, from, value);
        let hit = self.runs.get(lb).filter(|r| r.value == value);
        (lb, hit)
    }

    /// [`value_of_row`](Self::value_of_row) with a galloping restart from
    /// run index `hint`; returns the located run index for the caller to
    /// carry as the next hint.  Ascending row probes (the top-K batch
    /// drain pattern) then cost amortized O(1)–O(log) per probe.
    pub fn value_of_row_hinted(&self, row: u32, hint: usize) -> (usize, Option<u32>) {
        let from = if hint == 0
            || self.runs.get(hint.wrapping_sub(1)).is_some_and(|r| r.end() <= row)
        {
            hint.min(self.runs.len())
        } else {
            0
        };
        let i = gallop_partition_point(&self.runs, from, |r| r.end() <= row);
        let hit = match self.runs.get(i) {
            Some(r) if r.start <= row => Some(r.value),
            _ => None,
        };
        (i, hit)
    }

    /// The runs fully contained in the row range `[start, end)`.
    ///
    /// Containment-or-disjointness (§III-E) means a binary search on
    /// `start` suffices; the returned slice is every run of this column
    /// whose rows lie under the ancestor run `[start, end)` of the
    /// *previous* (higher) column.
    pub fn runs_in_rows(&self, start: u32, end: u32) -> &[Run] {
        let lo = self.runs.partition_point(|r| r.start < start);
        let hi = self.runs.partition_point(|r| r.start < end);
        debug_assert!(self.runs[lo..hi].iter().all(|r| r.end() <= end));
        &self.runs[lo..hi]
    }
}

/// Galloping (exponential) variant of `partition_point` that starts at
/// `from`: doubles the step until `pred` first fails, then binary-searches
/// the bracketed window.  Requires the usual partition precondition (`pred`
/// is true on a prefix) **and** that every index `< from` satisfies `pred`;
/// cost is O(log d) where `d` is the distance from `from` to the answer —
/// the win over a plain binary search when probes advance monotonically.
pub fn gallop_partition_point<F: Fn(&Run) -> bool>(runs: &[Run], from: usize, pred: F) -> usize {
    let n = runs.len();
    match runs.get(from) {
        None => return n, // `from` at or past the end
        Some(r) if !pred(r) => return from,
        _ => {}
    }
    // runs[from] satisfies pred; gallop until the first failure.
    let mut last_true = from;
    let mut step = 1usize;
    loop {
        let cand = from.saturating_add(step);
        match runs.get(cand) {
            Some(r) if pred(r) => {
                last_true = cand;
                step = step.saturating_mul(2);
            }
            _ => {
                // Answer lies in (last_true, min(cand, n)].
                let hi = cand.min(n);
                let window = runs.get(last_true + 1..hi).unwrap_or(&[]);
                return last_true + 1 + window.partition_point(|r| pred(r));
            }
        }
    }
}

/// Index of the first run with `value >= v`, galloping from `from` (all
/// runs before `from` must have `value < v`).
pub fn gallop_lower_bound(runs: &[Run], from: usize, value: u32) -> usize {
    gallop_partition_point(runs, from, |r| r.value < value)
}

/// Builds the per-level columns for one keyword from its posting list
/// (nodes in document order) and the tree's JDewey assignment.
///
/// Returns the columns (index 0 = level 1) — `columns.len()` is the
/// maximum posting depth `l_m` for the keyword.
pub fn build_columns(tree: &XmlTree, jd: &JDeweyAssignment, postings: &[NodeId]) -> Vec<Column> {
    let max_len = postings.iter().map(|&n| tree.depth(n)).max().unwrap_or(0) as usize;
    let mut columns = vec![Column::default(); max_len];
    // One pass per posting: walk the ancestor chain once, filling every
    // level.  Equal values are contiguous, so runs can be extended in place.
    let mut chain: Vec<u32> = Vec::with_capacity(max_len);
    for (row, &node) in postings.iter().enumerate() {
        let row = row as u32;
        chain.clear();
        let mut cur = Some(node);
        while let Some(c) = cur {
            chain.push(jd.number(c));
            cur = tree.parent(c);
        }
        chain.reverse();
        for (i, &value) in chain.iter().enumerate() {
            let col = &mut columns[i];
            match col.runs.last_mut() {
                Some(last) if last.value == value && last.end() == row => last.len += 1,
                _ => {
                    debug_assert!(
                        col.runs.last().is_none_or(|r| r.value < value),
                        "postings must be sorted in JDewey order"
                    );
                    col.runs.push(Run { value, start: row, len: 1 });
                }
            }
        }
    }
    columns
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtk_xml::parse;

    /// Tree: root -> a(x2 postings via children), b; postings at various
    /// depths including a non-leaf.
    fn setup() -> (xtk_xml::XmlTree, JDeweyAssignment) {
        let t = parse("<r><a><p/><q/></a><b><s><u/></s></b></r>").unwrap();
        let jd = JDeweyAssignment::assign(&t, 0);
        (t, jd)
    }

    #[test]
    fn columns_follow_ancestor_chains() {
        let (t, jd) = setup();
        // Postings: p, q (depth 3) and u (depth 4), all in doc order.
        let ids: Vec<NodeId> = t.ids().collect();
        let (p, q, u) = (ids[2], ids[3], ids[6]);
        let cols = build_columns(&t, &jd, &[p, q, u]);
        assert_eq!(cols.len(), 4);
        // Level 1: all three rows under root (number 1) -> one run of len 3.
        assert_eq!(cols[0].runs, vec![Run { value: 1, start: 0, len: 3 }]);
        // Level 2: rows 0-1 under a (1), row 2 under b (2).
        assert_eq!(
            cols[1].runs,
            vec![Run { value: 1, start: 0, len: 2 }, Run { value: 2, start: 2, len: 1 }]
        );
        // Level 3: p=1, q=2, s=3 (u's parent).
        assert_eq!(cols[2].row_count(), 3);
        assert_eq!(cols[2].distinct(), 3);
        // Level 4: only u.
        assert_eq!(cols[3].row_count(), 1);
    }

    #[test]
    fn shallow_postings_skip_deep_columns() {
        let (t, jd) = setup();
        let ids: Vec<NodeId> = t.ids().collect();
        let (a, u) = (ids[1], ids[6]); // depth 2 and depth 4
        let cols = build_columns(&t, &jd, &[a, u]);
        assert_eq!(cols.len(), 4);
        assert_eq!(cols[1].row_count(), 2); // both present at level 2
        assert_eq!(cols[2].row_count(), 1); // only u's chain reaches level 3
        assert_eq!(cols[2].runs[0].start, 1, "row coordinates stay global");
    }

    #[test]
    fn find_and_lower_bound() {
        let col = Column {
            runs: vec![
                Run { value: 2, start: 0, len: 3 },
                Run { value: 5, start: 3, len: 1 },
                Run { value: 9, start: 4, len: 2 },
            ],
        };
        assert_eq!(col.find(5).unwrap().start, 3);
        assert!(col.find(4).is_none());
        assert_eq!(col.lower_bound(1), 0);
        assert_eq!(col.lower_bound(3), 1);
        assert_eq!(col.lower_bound(9), 2);
        assert_eq!(col.lower_bound(10), 3);
    }

    #[test]
    fn runs_in_rows_containment() {
        let child = Column {
            runs: vec![
                Run { value: 1, start: 0, len: 2 },
                Run { value: 4, start: 2, len: 1 },
                Run { value: 7, start: 3, len: 3 },
            ],
        };
        // Ancestor run covering rows [0,3): contains the first two runs.
        let inside = child.runs_in_rows(0, 3);
        assert_eq!(inside.len(), 2);
        assert_eq!(inside[1].value, 4);
        // Ancestor run covering rows [3,6): only the last run.
        let inside = child.runs_in_rows(3, 6);
        assert_eq!(inside.len(), 1);
        assert_eq!(inside[0].value, 7);
        assert!(child.runs_in_rows(6, 9).is_empty());
    }

    #[test]
    fn gallop_matches_partition_point_everywhere() {
        let runs: Vec<Run> = (0..200u32)
            .map(|i| Run { value: i * 3, start: i * 2, len: 2 })
            .collect();
        for from in [0usize, 1, 7, 100, 199, 200, 500] {
            for v in 0..=620u32 {
                // Precondition: every index < from has value < v.
                if !runs[..from.min(runs.len())].iter().all(|r| r.value < v) {
                    continue;
                }
                let want = runs.partition_point(|r| r.value < v);
                assert_eq!(gallop_lower_bound(&runs, from, v), want, "from={from} v={v}");
            }
        }
        assert_eq!(gallop_lower_bound(&[], 0, 5), 0);
    }

    #[test]
    fn find_hinted_agrees_with_find() {
        let col = Column {
            runs: vec![
                Run { value: 2, start: 0, len: 3 },
                Run { value: 5, start: 3, len: 1 },
                Run { value: 9, start: 4, len: 2 },
                Run { value: 14, start: 6, len: 1 },
            ],
        };
        let mut hint = 0;
        for v in 0..20u32 {
            let (lb, hit) = col.find_hinted(v, hint);
            assert_eq!(hit, col.find(v), "v={v}");
            hint = lb;
        }
        // Stale (backwards) hints restart safely.
        assert_eq!(col.find_hinted(2, 3).1, col.find(2));
        assert_eq!(col.find_hinted(0, 4).1, None);
    }

    #[test]
    fn value_of_row_hinted_agrees_with_value_of_row() {
        let col = Column {
            runs: vec![
                Run { value: 2, start: 0, len: 3 },
                Run { value: 5, start: 5, len: 2 },
                Run { value: 9, start: 7, len: 1 },
            ],
        };
        let mut hint = 0;
        for row in 0..10u32 {
            let (i, v) = col.value_of_row_hinted(row, hint);
            assert_eq!(v, col.value_of_row(row), "row={row}");
            hint = i;
        }
        // Backwards probe with a now-stale hint.
        assert_eq!(col.value_of_row_hinted(0, 2).1, col.value_of_row(0));
    }

    #[test]
    fn empty_postings_give_no_columns() {
        let (t, jd) = setup();
        assert!(build_columns(&t, &jd, &[]).is_empty());
    }

    #[test]
    fn duplicate_values_merge_into_one_run() {
        let (t, jd) = setup();
        let ids: Vec<NodeId> = t.ids().collect();
        // Two postings in the same subtree: level-1 and level-2 runs merge.
        let cols = build_columns(&t, &jd, &[ids[2], ids[3]]);
        assert_eq!(cols[0].distinct(), 1);
        assert_eq!(cols[1].distinct(), 1);
        assert_eq!(cols[2].distinct(), 2);
    }
}
