//! Ranking model (paper §II-B).
//!
//! Individual nodes directly containing keywords are treated as
//! "documents": each `(node, keyword)` occurrence gets a **local score**
//! `g(v, w)` — here a tf–idf score normalized into `(0, 1]`.  When the
//! occurrence is propagated up to its ELCA/SLCA `u`, the score is damped by
//! `d(l_v - l_u)`, a decreasing function of the vertical distance (we use
//! `d(Δl) = λ^Δl`, the paper's running example uses `λ = 0.9`).  The
//! combining function `F` is the **sum** over keywords of the per-keyword
//! **maximum** damped occurrence score — monotone in each input, which is
//! the property all the top-K machinery relies on.

/// Exponential damping `d(Δl) = λ^Δl` with `0 < λ <= 1`.
///
/// A precomputed power table makes `factor` a lookup for any realistic
/// tree depth.
#[derive(Debug, Clone)]
pub struct Damping {
    lambda: f32,
    powers: Vec<f32>,
}

/// Depths beyond the precomputed table fall back to `powf`; 64 levels is
/// far deeper than any XML corpus in the paper.
const POWER_TABLE: usize = 64;

impl Damping {
    /// Creates the damping function `d(Δl) = lambda^Δl`.
    ///
    /// # Panics
    /// Panics unless `0 < lambda <= 1` (a damping factor must decrease).
    pub fn new(lambda: f32) -> Self {
        assert!(lambda > 0.0 && lambda <= 1.0, "damping λ must be in (0, 1], got {lambda}");
        let mut powers = Vec::with_capacity(POWER_TABLE);
        let mut p = 1.0f32;
        for _ in 0..POWER_TABLE {
            powers.push(p);
            p *= lambda;
        }
        Self { lambda, powers }
    }

    /// The paper's running choice, `λ = 0.9`.
    pub fn paper_default() -> Self {
        Self::new(0.9)
    }

    /// The damping base λ.
    #[inline]
    pub fn lambda(&self) -> f32 {
        self.lambda
    }

    /// `d(Δl) = λ^Δl`.
    #[inline]
    pub fn factor(&self, delta_levels: u16) -> f32 {
        match self.powers.get(delta_levels as usize) {
            Some(&p) => p,
            None => self.lambda.powi(delta_levels as i32),
        }
    }

    /// Damps a local score for an occurrence at depth `occ_depth` whose
    /// ELCA/SLCA sits at depth `anc_depth` (`anc_depth <= occ_depth`).
    #[inline]
    pub fn damp(&self, local: f32, occ_depth: u16, anc_depth: u16) -> f32 {
        debug_assert!(anc_depth <= occ_depth);
        local * self.factor(occ_depth - anc_depth)
    }
}

impl Default for Damping {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// tf–idf local scoring, normalized so every score lies in `(0, 1]`.
///
/// `raw = (1 + ln tf) * ln(1 + N / df)` where `N` is the number of nodes
/// with any text and `df` the keyword's posting-list length; the builder
/// divides by the corpus-wide maximum raw score.
#[derive(Debug, Clone, Copy)]
pub struct TfIdf {
    /// Number of "documents" (nodes with direct text) in the corpus.
    pub n_docs: u64,
}

impl TfIdf {
    /// Raw (unnormalized) score for an occurrence with term frequency `tf`
    /// in a list of document frequency `df`.
    pub fn raw(&self, tf: u32, df: u64) -> f64 {
        debug_assert!(tf >= 1 && df >= 1);
        let tf_part = 1.0 + (tf as f64).ln();
        let idf_part = (1.0 + self.n_docs as f64 / df as f64).ln();
        tf_part * idf_part
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn damping_is_exponential() {
        let d = Damping::new(0.9);
        assert!((d.factor(0) - 1.0).abs() < 1e-6);
        assert!((d.factor(1) - 0.9).abs() < 1e-6);
        assert!((d.factor(3) - 0.9f32.powi(3)).abs() < 1e-6);
        // Beyond the table: still correct.
        assert!((d.factor(100) - 0.9f32.powi(100)).abs() < 1e-9);
    }

    #[test]
    fn damp_applies_depth_difference() {
        let d = Damping::new(0.5);
        assert!((d.damp(0.8, 5, 3) - 0.2).abs() < 1e-6);
        assert!((d.damp(0.8, 3, 3) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn lambda_one_means_no_damping() {
        let d = Damping::new(1.0);
        assert_eq!(d.factor(10), 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_lambda_rejected() {
        let _ = Damping::new(0.0);
    }

    #[test]
    #[should_panic]
    fn large_lambda_rejected() {
        let _ = Damping::new(1.5);
    }

    #[test]
    fn tfidf_monotone_in_tf_and_rarity() {
        let m = TfIdf { n_docs: 1000 };
        assert!(m.raw(2, 10) > m.raw(1, 10), "higher tf scores higher");
        assert!(m.raw(1, 10) > m.raw(1, 100), "rarer term scores higher");
        assert!(m.raw(1, 1000) > 0.0);
    }
}
