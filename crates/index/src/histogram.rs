//! Equi-width histograms for join-cardinality estimation (paper §V-D:
//! "join cardinality estimation is a well-defined problem that has been
//! widely studied in the context of relational databases").
//!
//! The hybrid planner must predict how many JDewey numbers the per-level
//! star join will match.  A per-column histogram of *distinct values*
//! (runs) supports the classic attribute-independence estimate: within a
//! bucket of width `W` holding `d_i` distinct values of column `i`, the
//! expected size of the `k`-way intersection is `W · Π (d_i / W)`, capped
//! by `min_i d_i`.
//!
//! Histograms are built at indexing time for columns with enough rows to
//! make sampling expensive; short columns are cheaper to probe directly.

use crate::columnar::Column;

/// Number of buckets per histogram (small: histograms exist for every
/// level of every frequent term).
pub const BUCKETS: usize = 16;

/// Minimum rows for a column to carry a histogram.
pub const HISTOGRAM_MIN_ROWS: u64 = 256;

/// An equi-width histogram over one column's JDewey values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Smallest value in the column.
    pub min: u32,
    /// Largest value in the column.
    pub max: u32,
    /// Distinct values (runs) per bucket.
    pub distinct: Vec<u32>,
}

impl Histogram {
    /// Builds the histogram; `None` for an empty column.
    pub fn build(col: &Column) -> Option<Self> {
        let first = col.runs.first()?;
        let last = col.runs.last()?;
        let (min, max) = (first.value, last.value);
        let mut distinct = vec![0u32; BUCKETS];
        let span = (max - min) as u64 + 1;
        for run in &col.runs {
            let b = ((run.value - min) as u64 * BUCKETS as u64 / span) as usize;
            distinct[b.min(BUCKETS - 1)] += 1;
        }
        Some(Self { min, max, distinct })
    }

    /// Width of one bucket in value space.
    fn bucket_width(&self) -> f64 {
        ((self.max - self.min) as f64 + 1.0) / BUCKETS as f64
    }

    /// Distinct density of the value range `[lo, hi)` (values per unit),
    /// from the overlapping buckets.
    fn density(&self, lo: f64, hi: f64) -> f64 {
        if hi <= self.min as f64 || lo > self.max as f64 {
            return 0.0;
        }
        let w = self.bucket_width();
        let mut total = 0.0;
        for (b, &d) in self.distinct.iter().enumerate() {
            let b_lo = self.min as f64 + b as f64 * w;
            let b_hi = b_lo + w;
            let o_lo = b_lo.max(lo);
            let o_hi = b_hi.min(hi);
            if o_hi > o_lo {
                total += d as f64 * (o_hi - o_lo) / w;
            }
        }
        total / (hi - lo)
    }

    /// Estimated size of the `k`-way value intersection under the
    /// attribute-independence assumption, integrating over the common
    /// value range in [`BUCKETS`] strips.
    pub fn estimate_conjunction(hists: &[&Histogram]) -> f64 {
        let Some(lo) = hists.iter().map(|h| h.min).max() else { return 0.0 };
        let Some(hi) = hists.iter().map(|h| h.max).min() else { return 0.0 };
        if hists.is_empty() || lo > hi {
            return 0.0;
        }
        let lo = lo as f64;
        let hi = hi as f64 + 1.0;
        let strip = (hi - lo) / BUCKETS as f64;
        let mut total = 0.0;
        for s in 0..BUCKETS {
            let s_lo = lo + s as f64 * strip;
            let s_hi = s_lo + strip;
            let width = s_hi - s_lo;
            // Expected matches in this strip: width * prod(density_i),
            // capped by the scarcest column's distinct count here.
            let mut prod = width;
            let mut cap = f64::INFINITY;
            for h in hists {
                let dens = h.density(s_lo, s_hi);
                prod *= dens;
                cap = cap.min(dens * width);
            }
            total += prod.min(cap.max(0.0));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::Run;

    fn col(values: impl Iterator<Item = u32>) -> Column {
        let mut runs = Vec::new();
        for (i, v) in values.enumerate() {
            runs.push(Run { value: v, start: i as u32, len: 1 });
        }
        Column { runs }
    }

    #[test]
    fn build_counts_distinct_per_bucket() {
        let c = col((0..160).map(|i| i * 10)); // 160 values over [0, 1590]
        let h = Histogram::build(&c).unwrap();
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1590);
        assert_eq!(h.distinct.iter().sum::<u32>(), 160);
        // Uniform: every bucket gets 10.
        assert!(h.distinct.iter().all(|&d| d == 10), "{:?}", h.distinct);
    }

    #[test]
    fn empty_column_has_no_histogram() {
        assert!(Histogram::build(&Column { runs: vec![] }).is_none());
    }

    #[test]
    fn disjoint_ranges_estimate_zero() {
        let a = Histogram::build(&col(0..100)).unwrap();
        let b = Histogram::build(&col(1_000..1_100)).unwrap();
        assert_eq!(Histogram::estimate_conjunction(&[&a, &b]), 0.0);
    }

    #[test]
    fn identical_uniform_columns_estimate_high() {
        // Dense identical columns: expected intersection = everything.
        let a = Histogram::build(&col(0..1_000)).unwrap();
        let b = Histogram::build(&col(0..1_000)).unwrap();
        let est = Histogram::estimate_conjunction(&[&a, &b]);
        assert!((800.0..=1_100.0).contains(&est), "est {est}");
    }

    #[test]
    fn sparse_vs_dense_estimates_near_truth() {
        // A: every value in [0, 10000); B: every 100th value (100 values).
        // True intersection = 100; independence gives 10000 * 1 * 0.01.
        let a = Histogram::build(&col(0..10_000)).unwrap();
        let b = Histogram::build(&col((0..100).map(|i| i * 100))).unwrap();
        let est = Histogram::estimate_conjunction(&[&a, &b]);
        assert!((50.0..=210.0).contains(&est), "est {est}");
    }

    #[test]
    fn three_way_estimate_bounded_by_smallest() {
        let a = Histogram::build(&col(0..1_000)).unwrap();
        let b = Histogram::build(&col((0..500).map(|i| i * 2))).unwrap();
        let c = Histogram::build(&col((0..10).map(|i| i * 100))).unwrap();
        let est = Histogram::estimate_conjunction(&[&a, &b, &c]);
        assert!(est <= 10.5, "est {est} must be capped by the 10-value column");
        assert!(est > 0.0);
    }

    #[test]
    fn skewed_distribution_respects_buckets() {
        // All of B's values live in A's empty upper half.
        let a = Histogram::build(&col(0..500)).unwrap(); // [0, 499]
        let mut both = col(0..500);
        both.runs.push(Run { value: 10_000, start: 500, len: 1 }); // stretch range
        let a_stretched = Histogram::build(&both).unwrap();
        let b = Histogram::build(&col(5_000..5_100)).unwrap();
        // Plain a: no overlap at all.
        assert_eq!(Histogram::estimate_conjunction(&[&a, &b]), 0.0);
        // Stretched a: overlap range is in a's empty buckets -> ~0.
        let est = Histogram::estimate_conjunction(&[&a_stretched, &b]);
        assert!(est < 5.0, "est {est}");
    }
}
