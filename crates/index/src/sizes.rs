//! Index size accounting — the machinery behind **Table I** of the paper.
//!
//! Five physical indexes are measured, all derived from the same
//! [`XmlIndex`]:
//!
//! | System       | Components reported                                   |
//! |--------------|-------------------------------------------------------|
//! | Join-based   | columnar ILs (lengths + compressed columns) + sparse  |
//! | Stack-based  | Dewey ILs, prefix-compressed (the coding of [6])      |
//! | Index-based  | single B-tree of `(keyword, Dewey)` entries           |
//! | Top-K join   | columnar ILs + scores + score-order segments + sparse |
//! | RDIL         | score-sorted Dewey ILs + per-keyword doc-order B-tree |
//!
//! All byte counts come from actually encoding the data (or, for the
//! B-trees, streaming the exact keys through the page-fill emulation of
//! [`crate::btree`]) — no hand-waved constants beyond the page/overhead
//! parameters documented there.

use crate::btree::{composite_key, dewey_key_bytes, emulate_size};
use crate::builder::XmlIndex;
use crate::codec::{choose_scheme, encode_column, varint_len, write_varint, CompressedColumn};
use crate::sparse::SPARSE_ENTRY_BYTES;
use std::fmt;

/// Exact on-disk bytes of one column record in the footered formats
/// (v2 varint payloads and v3 bit-packed payloads share one directory
/// shape): scheme byte, block count, per-block directory entries
/// `(offset, first value, row count, last − first)` as varints, payload
/// length, payload.  Mirrors the private `encode_term_record` in
/// [`crate::disk`]; the `column_accounting_matches_actual_file_length`
/// tests keep the two from drifting for both layouts.
fn column_record_bytes(cc: &CompressedColumn) -> u64 {
    let mut bytes = 1 + varint_len(cc.block_offsets.len() as u32);
    for b in 0..cc.block_offsets.len() {
        let off = cc.block_offsets.get(b).copied().unwrap_or(0);
        let first = cc.block_first_values.get(b).copied().unwrap_or(0);
        let rows = cc.block_rows.get(b).copied().unwrap_or(0);
        let last = cc.block_last_values.get(b).copied().unwrap_or(first);
        bytes += varint_len(off)
            + varint_len(first)
            + varint_len(rows)
            + varint_len(last.saturating_sub(first));
    }
    bytes += varint_len(cc.payload_bytes() as u32) + cc.payload_bytes();
    bytes as u64
}

/// Byte sizes of the five physical indexes (Table I).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexSizes {
    /// Join-based inverted lists (vocabulary + lengths + columns).
    pub join_il: u64,
    /// Join-based sparse indices.
    pub join_sparse: u64,
    /// Stack-based Dewey inverted lists (prefix-compressed).
    pub stack_il: u64,
    /// Index-based single B-tree over `(keyword, Dewey)` keys.
    pub index_btree: u64,
    /// Top-K join inverted lists (join IL + scores + segment permutation).
    pub topk_il: u64,
    /// Top-K join sparse indices (same columns as join-based).
    pub topk_sparse: u64,
    /// RDIL inverted lists (Dewey ILs + per-posting scores).
    pub rdil_il: u64,
    /// RDIL per-keyword B-trees.
    pub rdil_btree: u64,
}

/// Computes all Table I sizes for one corpus.
pub fn compute(ix: &XmlIndex) -> IndexSizes {
    let mut s = IndexSizes::default();
    let mut scratch = Vec::new();
    // Streaming iterator of composite (term, dewey) key lengths for the
    // index-based B-tree, built in sorted order (terms in arbitrary order
    // is fine: pages depend only on lengths).
    let mut index_key_lens: Vec<usize> = Vec::new();
    let mut rdil_key_lens: Vec<usize> = Vec::new();

    for (_, term) in ix.terms() {
        let n = term.postings.len();
        // --- vocabulary entry, counted once per flavor that stores lists
        // per term (join, stack, topk, rdil) ---
        let vocab_entry = term.term.len() as u64 + 5; // len varint + list offset u32

        // --- join-based columnar lists ---
        let mut join = vocab_entry;
        scratch.clear();
        write_varint(n as u32, &mut scratch); // posting-count prefix
        for &node in &term.postings {
            write_varint(ix.tree().depth(node) as u32, &mut scratch);
        }
        join += scratch.len() as u64; // lengths array
        join += varint_len(term.columns.len() as u32) as u64;
        let mut sparse_blocks = 0u64;
        for col in &term.columns {
            let cc = encode_column(col, choose_scheme(col));
            join += column_record_bytes(&cc);
            sparse_blocks += cc.block_count() as u64;
        }
        s.join_il += join;
        s.join_sparse += sparse_blocks * SPARSE_ENTRY_BYTES as u64;

        // --- stack-based Dewey lists, prefix-compressed ---
        let mut stack = vocab_entry;
        scratch.clear();
        let mut prev: &[u32] = &[];
        for &node in &term.postings {
            let dewey = ix.dewey().dewey(node).components();
            let common = dewey.iter().zip(prev).take_while(|(a, b)| a == b).count();
            write_varint(common as u32, &mut scratch);
            write_varint((dewey.len() - common) as u32, &mut scratch);
            for &c in &dewey[common..] {
                write_varint(c, &mut scratch);
            }
            prev = dewey;
        }
        stack += scratch.len() as u64;
        s.stack_il += stack;

        // --- index-based single B-tree: one key per posting ---
        for &node in &term.postings {
            let key = composite_key(&term.term, ix.dewey().dewey(node).components());
            index_key_lens.push(key.len());
        }

        // --- top-K join: join IL + 4B score/posting + segment directory ---
        let seg_dir: u64 = term.segments.iter().map(|seg| 6 + 4 * seg.rows.len() as u64).sum();
        s.topk_il += join + 4 * n as u64 + seg_dir;
        s.topk_sparse += sparse_blocks * SPARSE_ENTRY_BYTES as u64;

        // --- RDIL: score-sorted Dewey lists (full ids — the list is not in
        // doc order, so prefix compression does not apply) + scores ---
        let mut rdil = vocab_entry + 4 * n as u64;
        for &row in &term.score_rows {
            let dewey = ix.dewey().dewey(term.postings[row as usize]).components();
            rdil += dewey_key_bytes(dewey).len() as u64 + 1;
        }
        s.rdil_il += rdil;
        // Doc-order B-tree entries for the index lookups; all keywords
        // share one page-packed tree keyed by (term, Dewey), as a
        // BerkeleyDB file would — per-term trees would waste a page per
        // tiny list.
        for &node in &term.postings {
            rdil_key_lens.push(
                term.term.len() + 1 + dewey_key_bytes(ix.dewey().dewey(node).components()).len(),
            );
        }
    }

    index_key_lens.sort_unstable(); // page fill depends only on lengths; order irrelevant
    let (_, bytes) = emulate_size(index_key_lens.into_iter());
    s.index_btree = bytes;
    let (_, bytes) = emulate_size(rdil_key_lens.into_iter());
    s.rdil_btree = bytes;
    s
}

/// Formats a byte count the way the paper does (MB / GB).
pub fn human(bytes: u64) -> String {
    const MB: f64 = 1024.0 * 1024.0;
    let mb = bytes as f64 / MB;
    if mb >= 1024.0 {
        format!("{:.1}G", mb / 1024.0)
    } else if mb >= 10.0 {
        format!("{mb:.0}MB")
    } else {
        format!("{mb:.2}MB")
    }
}

impl fmt::Display for IndexSizes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<14} IL {:>10}   sparse {:>10}", "Join-based", human(self.join_il), human(self.join_sparse))?;
        writeln!(f, "{:<14} IL {:>10}", "stack-based", human(self.stack_il))?;
        writeln!(f, "{:<14}    {:>10}", "index-based", human(self.index_btree))?;
        writeln!(f, "{:<14} IL {:>10}   sparse {:>10}", "Top-K Join", human(self.topk_il), human(self.topk_sparse))?;
        write!(f, "{:<14} IL {:>10}   B+tree {:>10}", "RDIL", human(self.rdil_il), human(self.rdil_btree))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtk_xml::parse;

    fn small_index() -> XmlIndex {
        let mut xml = String::from("<dblp>");
        for c in 0..4 {
            xml.push_str(&format!("<conf name=\"c{c}\">"));
            for y in 0..3 {
                xml.push_str("<year>");
                for p in 0..5 {
                    xml.push_str(&format!(
                        "<paper><title>xml keyword search topic{p} {y}</title><author>ann bob</author></paper>"
                    ));
                }
                xml.push_str("</year>");
            }
            xml.push_str("</conf>");
        }
        xml.push_str("</dblp>");
        XmlIndex::build(parse(&xml).unwrap())
    }

    #[test]
    fn all_components_nonzero() {
        let s = compute(&small_index());
        assert!(s.join_il > 0);
        assert!(s.join_sparse > 0);
        assert!(s.stack_il > 0);
        assert!(s.index_btree > 0);
        assert!(s.topk_il > s.join_il, "top-K adds scores and segments");
        assert!(s.rdil_il > s.stack_il, "RDIL stores full ids + scores");
        assert!(s.rdil_btree > 0);
    }

    #[test]
    fn table1_shape_holds() {
        // The paper's qualitative Table I relationships: the index-based
        // B-tree dwarfs the lists; RDIL's B-trees are a large add-on.
        let s = compute(&small_index());
        assert!(
            s.index_btree > 2 * s.join_il,
            "index-based ({}) must dwarf join-based ({})",
            s.index_btree,
            s.join_il
        );
        assert!(s.rdil_il + s.rdil_btree > s.topk_il + s.topk_sparse);
    }

    #[test]
    fn column_accounting_matches_actual_file_length() {
        // Rebuild the full v2 file size out of the same primitives Table I
        // uses.  If `column_record_bytes` ever drifts from the writer,
        // this stops matching the real file.
        use crate::disk::{
            persisted_file_bytes, write_index, FormatVersion, WriteIndexOptions, MAGIC_V2,
        };
        let ix = small_index();
        let opts =
            WriteIndexOptions { include_scores: false, format: FormatVersion::V2 };
        let mut model =
            (varint_len(MAGIC_V2) + varint_len(ix.vocab_size() as u32) + 1) as u64;
        for (_, term) in ix.terms() {
            model += varint_len(term.term.len() as u32) as u64 + term.term.len() as u64;
            model += varint_len(term.postings.len() as u32) as u64;
            for &node in &term.postings {
                model += varint_len(ix.tree().depth(node) as u32) as u64;
            }
            model += varint_len(term.columns.len() as u32) as u64;
            for col in &term.columns {
                model += column_record_bytes(&encode_column(col, choose_scheme(col)));
            }
        }
        assert_eq!(model, persisted_file_bytes(&ix, opts));
        let path = std::env::temp_dir()
            .join(format!("xtk_sizes_exact_{}.bin", std::process::id()));
        let written = write_index(&ix, &path, opts).unwrap();
        assert_eq!(model, written);
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn column_accounting_matches_v3_file_length() {
        // Same exact-byte reconstruction for the bit-packed format: the
        // v3 directory is byte-identical in shape to v2, only the
        // payload encoder changes, so `column_record_bytes` over
        // `encode_column_packed` must rebuild the real v3 file size.
        use crate::codec::encode_column_packed;
        use crate::disk::{
            persisted_file_bytes, write_index, FormatVersion, WriteIndexOptions, MAGIC_V3,
        };
        let ix = small_index();
        let opts =
            WriteIndexOptions { include_scores: false, format: FormatVersion::V3 };
        let mut model =
            (varint_len(MAGIC_V3) + varint_len(ix.vocab_size() as u32) + 1) as u64;
        for (_, term) in ix.terms() {
            model += varint_len(term.term.len() as u32) as u64 + term.term.len() as u64;
            model += varint_len(term.postings.len() as u32) as u64;
            for &node in &term.postings {
                model += varint_len(ix.tree().depth(node) as u32) as u64;
            }
            model += varint_len(term.columns.len() as u32) as u64;
            for col in &term.columns {
                model += column_record_bytes(&encode_column_packed(col, choose_scheme(col)));
            }
        }
        assert_eq!(model, persisted_file_bytes(&ix, opts));
        let path = std::env::temp_dir()
            .join(format!("xtk_sizes_exact_v3_{}.bin", std::process::id()));
        let written = write_index(&ix, &path, opts).unwrap();
        assert_eq!(model, written);
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn footers_are_counted() {
        // The v2 directory footers must show up in the join accounting:
        // every block contributes at least two extra varint bytes over a
        // footer-free model.
        let ix = small_index();
        let s = compute(&ix);
        let mut footer_free = 0u64;
        let mut blocks = 0u64;
        for (_, term) in ix.terms() {
            for col in &term.columns {
                let cc = encode_column(col, choose_scheme(col));
                let mut b = 1 + varint_len(cc.block_offsets.len() as u32);
                for i in 0..cc.block_offsets.len() {
                    b += varint_len(cc.block_offsets.get(i).copied().unwrap_or(0));
                    b += varint_len(cc.block_first_values.get(i).copied().unwrap_or(0));
                }
                b += varint_len(cc.payload_bytes() as u32) + cc.payload_bytes();
                footer_free += b as u64;
                blocks += cc.block_count() as u64;
            }
        }
        let mut with_footers = 0u64;
        for (_, term) in ix.terms() {
            for col in &term.columns {
                with_footers += column_record_bytes(&encode_column(col, choose_scheme(col)));
            }
        }
        assert!(with_footers >= footer_free + 2 * blocks, "footers must be accounted");
        assert!(s.join_il > with_footers, "join IL includes vocab + lengths on top");
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human(512 * 1024), "0.50MB");
        assert_eq!(human(327 * 1024 * 1024), "327MB");
        assert_eq!(human(2200 * 1024 * 1024), "2.1G");
    }
}
