//! Tokenization.
//!
//! Plays the role Lucene's analyzer plays in the paper's system: text is
//! lowercased and split on non-alphanumeric characters.  No stemming and no
//! stop-word removal — the paper's frequency sweeps control list lengths
//! explicitly, so the tokenizer stays deterministic and transparent.

/// Maximum length of a token kept by the tokenizer; longer runs are split.
/// Guards pathological inputs (e.g. base64 blobs inside text).
pub const MAX_TOKEN_LEN: usize = 64;

/// Iterates over the tokens of `text`: maximal runs of alphanumeric
/// characters, lowercased.
///
/// ```
/// let toks: Vec<String> = xtk_index::text::tokenize("Top-K  Keyword  Search, 2010!").collect();
/// assert_eq!(toks, ["top", "k", "keyword", "search", "2010"]);
/// ```
pub fn tokenize(text: &str) -> Tokenizer<'_> {
    Tokenizer { rest: text }
}

/// Iterator returned by [`tokenize`].
pub struct Tokenizer<'a> {
    rest: &'a str,
}

impl Iterator for Tokenizer<'_> {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        // Skip separators.
        let start = self.rest.find(|c: char| c.is_alphanumeric())?;
        self.rest = &self.rest[start..];
        let end = self
            .rest
            .find(|c: char| !c.is_alphanumeric())
            .unwrap_or(self.rest.len());
        let mut end = end.min(MAX_TOKEN_LEN);
        // Don't split inside a multi-byte character when clamping.
        while !self.rest.is_char_boundary(end) {
            end -= 1;
        }
        let (tok, rest) = self.rest.split_at(end.max(1));
        self.rest = rest;
        Some(tok.to_lowercase())
    }
}

/// Tokenizes and returns distinct tokens with their term frequencies,
/// in first-occurrence order.
pub fn token_counts(text: &str) -> Vec<(String, u32)> {
    let mut out: Vec<(String, u32)> = Vec::new();
    'outer: for tok in tokenize(text) {
        for (t, c) in out.iter_mut() {
            if *t == tok {
                *c += 1;
                continue 'outer;
            }
        }
        out.push((tok, 1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_lowercases() {
        let toks: Vec<String> = tokenize("XML/Keyword-Search (ICDE'10)").collect();
        assert_eq!(toks, ["xml", "keyword", "search", "icde", "10"]);
    }

    #[test]
    fn empty_and_separator_only() {
        assert_eq!(tokenize("").count(), 0);
        assert_eq!(tokenize("  ,.;!  ").count(), 0);
    }

    #[test]
    fn numbers_are_tokens() {
        let toks: Vec<String> = tokenize("year 2010 vol.35").collect();
        assert_eq!(toks, ["year", "2010", "vol", "35"]);
    }

    #[test]
    fn unicode_tokens() {
        let toks: Vec<String> = tokenize("Müller's Données").collect();
        assert_eq!(toks, ["müller", "s", "données"]);
    }

    #[test]
    fn very_long_runs_are_split() {
        let long = "a".repeat(200);
        let toks: Vec<String> = tokenize(&long).collect();
        assert!(toks.iter().all(|t| t.len() <= MAX_TOKEN_LEN));
        assert_eq!(toks.concat().len(), 200);
    }

    #[test]
    fn token_counts_aggregate() {
        let tc = token_counts("xml data xml XML keyword");
        assert_eq!(tc, vec![("xml".into(), 3), ("data".into(), 1), ("keyword".into(), 1)]);
    }
}
