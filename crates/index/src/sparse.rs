//! Sparse per-column indices (paper §III-C, §V-A).
//!
//! Columns are sorted, so "conceptually no additional indices are
//! required" — but locating a JDewey number inside a multi-block column
//! should not scan every block.  The sparse index keeps one `(first value,
//! block)` entry per 4 KiB block; the index join binary-searches it and
//! then decodes at most one block.  Table I reports its size separately
//! ("sparse"), which is why it is its own structure rather than part of
//! the codec.

use crate::codec::CompressedColumn;

/// Sparse index over one compressed column: one entry per block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseIndex {
    /// First value of each block, in block order (sorted, since the column
    /// is sorted).
    firsts: Vec<u32>,
    /// Last value of each block (format-v2 footers); empty for columns
    /// encoded without footers.  With `firsts` this brackets each block's
    /// value range, letting probes prove a miss without a decode.
    lasts: Vec<u32>,
}

/// On-disk bytes per sparse entry: u32 first-value + u32 block offset.
pub const SPARSE_ENTRY_BYTES: usize = 8;

impl SparseIndex {
    /// Builds the sparse index for a compressed column.
    pub fn build(cc: &CompressedColumn) -> Self {
        Self { firsts: cc.block_first_values.clone(), lasts: cc.block_last_values.clone() }
    }

    /// The block that could contain `value` (the last block whose first
    /// value is `<= value`), or `None` when `value` sorts before every
    /// block.
    pub fn block_for(&self, value: u32) -> Option<usize> {
        let idx = self.firsts.partition_point(|&f| f <= value);
        idx.checked_sub(1)
    }

    /// Like [`block_for`](Self::block_for), but also `None` when the
    /// candidate block's `[first, last]` range provably excludes `value`
    /// (the footer-powered definite miss — no decode needed at all).
    /// Falls back to `block_for` when the column has no footers.
    pub fn block_for_probe(&self, value: u32) -> Option<usize> {
        let b = self.block_for(value)?;
        match self.lasts.get(b) {
            Some(&last) if value > last => None,
            _ => Some(b),
        }
    }

    /// Number of entries (== number of blocks).
    pub fn len(&self) -> usize {
        self.firsts.len()
    }

    /// `true` when the column has no blocks.
    pub fn is_empty(&self) -> bool {
        self.firsts.is_empty()
    }

    /// On-disk size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.firsts.len() * SPARSE_ENTRY_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{encode_column, Scheme};
    use crate::columnar::{Column, Run};

    #[test]
    fn block_lookup() {
        let runs: Vec<Run> =
            (0..30_000).map(|i| Run { value: i * 2, start: i, len: 1 }).collect();
        let cc = encode_column(&Column { runs }, Scheme::Delta);
        let sx = SparseIndex::build(&cc);
        assert!(sx.len() > 1);
        assert_eq!(sx.size_bytes(), sx.len() * SPARSE_ENTRY_BYTES);
        // A value before the first block has no candidate block.
        assert!(cc.block_first_values[0] == 0);
        assert_eq!(sx.block_for(0), Some(0));
        // A mid value maps to a block whose first value precedes it and
        // whose successor's first value exceeds it.
        let b = sx.block_for(31_111).unwrap();
        assert!(cc.block_first_values[b] <= 31_111);
        if b + 1 < sx.len() {
            assert!(cc.block_first_values[b + 1] > 31_111);
        }
        // Beyond the last value: still the last block.
        assert_eq!(sx.block_for(u32::MAX), Some(sx.len() - 1));
    }

    #[test]
    fn probe_uses_footers_for_definite_misses() {
        // Values 0, 2, 4, ... — every odd probe misses.
        let runs: Vec<Run> =
            (0..30_000).map(|i| Run { value: i * 2, start: i, len: 1 }).collect();
        let cc = encode_column(&Column { runs }, Scheme::Delta);
        let sx = SparseIndex::build(&cc);
        // Present values are always found.
        assert_eq!(sx.block_for_probe(0), Some(0));
        let b = sx.block_for_probe(31_110).unwrap();
        assert_eq!(sx.block_for(31_110), Some(b));
        // Beyond the last stored value: the footer proves the miss.
        assert_eq!(sx.block_for_probe(u32::MAX), None);
        assert_eq!(sx.block_for_probe(2 * 30_000), None);
        // Odd values *inside* a block's range still return the candidate
        // (the footer brackets the range, it does not enumerate values).
        assert_eq!(sx.block_for_probe(31_111), Some(b));
    }

    #[test]
    fn empty_column_sparse() {
        let cc = encode_column(&Column { runs: vec![] }, Scheme::Rle);
        let sx = SparseIndex::build(&cc);
        assert!(sx.is_empty());
        assert_eq!(sx.block_for(5), None);
    }
}
