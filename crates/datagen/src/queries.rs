//! Query workload generation for the experiment harness.
//!
//! The paper's Fig. 9 runs "forty queries within each frequency range ...
//! randomly selected"; Fig. 10 adds hand-picked *correlated* queries such
//! as `{sensor, network}`.  With planted terms the frequency axis is
//! exact; this module also selects random background terms within a
//! frequency band for fully random workloads.

use xtk_xml::testutil::Rng;
use xtk_index::XmlIndex;

/// Random distinct terms whose posting length lies in `[lo, hi]`.
///
/// Returns fewer than `count` terms when the corpus does not have enough
/// in the band.
pub fn terms_in_band(ix: &XmlIndex, lo: usize, hi: usize, count: usize, seed: u64) -> Vec<String> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut candidates: Vec<&str> = ix
        .terms()
        .filter(|(_, t)| t.len() >= lo && t.len() <= hi)
        .map(|(_, t)| &*t.term)
        .collect();
    // Partial Fisher–Yates for a deterministic sample.
    let n = candidates.len();
    for i in 0..count.min(n) {
        let j = rng.gen_range(i..n);
        candidates.swap(i, j);
    }
    candidates.into_iter().take(count).map(str::to_string).collect()
}

/// A workload of `count` queries of `k` keywords: one keyword near
/// `high_freq`, the rest within `low_band`, all sampled from the actual
/// vocabulary.
pub fn frequency_workload(
    ix: &XmlIndex,
    k: usize,
    high_freq_band: (usize, usize),
    low_band: (usize, usize),
    count: usize,
    seed: u64,
) -> Vec<Vec<String>> {
    let highs = terms_in_band(ix, high_freq_band.0, high_freq_band.1, count, seed ^ 0xAAAA);
    let lows = terms_in_band(ix, low_band.0, low_band.1, count * (k - 1), seed ^ 0x5555);
    let mut out = Vec::new();
    for (i, high) in highs.iter().take(count).enumerate() {
        let mut q = vec![high.clone()];
        for j in 0..k - 1 {
            match lows.get(i * (k - 1) + j) {
                Some(w) if !q.contains(w) => q.push(w.clone()),
                _ => break,
            }
        }
        if q.len() == k {
            out.push(q);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dblp::{generate, DblpConfig};
    use crate::PlantedTerm;

    fn ix() -> XmlIndex {
        let cfg = DblpConfig {
            conferences: 10,
            years_per_conf: 3,
            papers_per_year: 10,
            planted: vec![PlantedTerm::new("hf", 250), PlantedTerm::new("lf", 10)],
            ..Default::default()
        };
        XmlIndex::build(generate(&cfg).tree)
    }

    #[test]
    fn band_selection_respects_frequencies() {
        let ix = ix();
        let terms = terms_in_band(&ix, 200, 300, 5, 1);
        assert!(terms.iter().any(|t| t == "hf"));
        for t in &terms {
            let len = ix.term_by_str(t).unwrap().len();
            assert!((200..=300).contains(&len), "{t} has {len}");
        }
    }

    #[test]
    fn workload_shape() {
        let ix = ix();
        let ql = frequency_workload(&ix, 3, (200, 300), (5, 50), 4, 9);
        assert!(!ql.is_empty());
        for q in &ql {
            assert_eq!(q.len(), 3);
            // No duplicate keywords inside a query.
            let mut s = q.clone();
            s.sort();
            s.dedup();
            assert_eq!(s.len(), 3);
        }
    }

    #[test]
    fn deterministic_workloads() {
        let ix = ix();
        assert_eq!(
            frequency_workload(&ix, 2, (200, 300), (5, 50), 6, 42),
            frequency_workload(&ix, 2, (200, 300), (5, 50), 6, 42)
        );
    }
}
