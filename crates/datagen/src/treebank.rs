//! A Treebank-like deep-tree generator.
//!
//! DBLP is shallow (depth 5) and XMark moderate (depth ~6–8); parse-tree
//! corpora like the Penn Treebank reach depth 30+.  Depth is where the
//! join-based algorithm's bottom-up start pays off: evaluation begins at
//! `l_0 = min_i l_m^i`, so keywords that live high in the tree never touch
//! the deep columns at all ("this would save disk I/O when the XML tree is
//! deep and some keywords only appear at high levels", §III-B).
//!
//! The generated document is `file / sentence* / recursive phrase nodes`
//! with geometric branching, plus per-depth-band planting hooks so
//! experiments can position keywords at chosen depths.

use crate::vocab::Vocab;
use crate::{plant_terms, PlantedTerm};
use xtk_xml::testutil::Rng;
use xtk_xml::tree::NodeId;
use xtk_xml::XmlTree;

/// Configuration of the Treebank-like generator.
#[derive(Debug, Clone)]
pub struct TreebankConfig {
    /// Number of sentence subtrees.
    pub sentences: usize,
    /// Maximum phrase-nesting depth below a sentence.
    pub max_depth: u16,
    /// Probability that a phrase node nests another phrase (vs a leaf).
    pub branch_prob: f64,
    /// Children per phrase node (1..=this).
    pub max_children: usize,
    /// Background vocabulary size.
    pub vocab_size: usize,
    /// RNG seed.
    pub seed: u64,
    /// Terms planted into **shallow** phrase nodes (depth <= 4).
    pub planted_shallow: Vec<PlantedTerm>,
    /// Terms planted into **deep** leaf nodes (the deepest band).
    pub planted_deep: Vec<PlantedTerm>,
}

impl Default for TreebankConfig {
    fn default() -> Self {
        Self {
            sentences: 200,
            max_depth: 16,
            branch_prob: 0.7,
            max_children: 3,
            vocab_size: 5_000,
            seed: 0x7B,
            planted_shallow: Vec::new(),
            planted_deep: Vec::new(),
        }
    }
}

/// A generated deep corpus.
#[derive(Debug)]
pub struct TreebankCorpus {
    /// The document.
    pub tree: XmlTree,
    /// Nodes at depth <= 4 with text (shallow planting targets).
    pub shallow: Vec<NodeId>,
    /// Leaf nodes in the deepest quartile (deep planting targets).
    pub deep: Vec<NodeId>,
}

const PHRASES: [&str; 6] = ["np", "vp", "pp", "adjp", "advp", "sbar"];

/// Generates the corpus.
pub fn generate(cfg: &TreebankConfig) -> TreebankCorpus {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let vocab = Vocab::new(cfg.vocab_size, 1.05);
    let mut tree = XmlTree::new();
    let root = tree.add_root("file");
    let mut shallow = Vec::new();
    let mut leaves: Vec<(NodeId, u16)> = Vec::new();

    for _ in 0..cfg.sentences {
        let sentence = tree.add_child(root, "sentence");
        // A short topic line directly on the sentence (shallow text).
        let mut topic = String::new();
        vocab.sentence_into(&mut rng, 2, &mut topic);
        tree.append_text(sentence, &topic);
        shallow.push(sentence);
        grow(&mut tree, sentence, 3, cfg, &vocab, &mut rng, &mut shallow, &mut leaves);
    }

    // Deep band: deepest quartile of leaves.
    let max_leaf_depth = leaves.iter().map(|&(_, d)| d).max().unwrap_or(0);
    let cut = max_leaf_depth.saturating_sub(max_leaf_depth / 4).max(5);
    let deep: Vec<NodeId> =
        leaves.iter().filter(|&&(_, d)| d >= cut).map(|&(n, _)| n).collect();

    plant_terms(&mut tree, &shallow, &cfg.planted_shallow, &mut rng);
    plant_terms(&mut tree, &deep, &cfg.planted_deep, &mut rng);
    TreebankCorpus { tree, shallow, deep }
}

#[allow(clippy::too_many_arguments)]
fn grow(
    tree: &mut XmlTree,
    parent: NodeId,
    depth: u16,
    cfg: &TreebankConfig,
    vocab: &Vocab,
    rng: &mut Rng,
    shallow: &mut Vec<NodeId>,
    leaves: &mut Vec<(NodeId, u16)>,
) {
    let n_children = rng.gen_range(1..cfg.max_children + 1);
    for _ in 0..n_children {
        let label = PHRASES[rng.gen_range(0..PHRASES.len())];
        let node = tree.add_child(parent, label);
        if depth <= 4 {
            shallow.push(node);
        }
        let nest = depth < cfg.max_depth + 2 && rng.gen_bool(cfg.branch_prob);
        if nest {
            grow(tree, node, depth + 1, cfg, vocab, rng, shallow, leaves);
        } else {
            let mut text = String::new();
            let words = rng.gen_range(1..4);
            vocab.sentence_into(rng, words, &mut text);
            tree.append_text(node, &text);
            leaves.push((node, depth));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtk_xml::stats::TreeStats;

    #[test]
    fn trees_are_deep() {
        let corpus = generate(&TreebankConfig { sentences: 50, ..Default::default() });
        let st = TreeStats::compute(&corpus.tree);
        assert!(st.max_depth >= 10, "depth {}", st.max_depth);
        assert!(!corpus.deep.is_empty());
        assert!(!corpus.shallow.is_empty());
        // Band invariants.
        for &n in &corpus.shallow {
            assert!(corpus.tree.depth(n) <= 4);
        }
        let min_deep = corpus.deep.iter().map(|&n| corpus.tree.depth(n)).min().unwrap();
        assert!(min_deep >= 5);
    }

    #[test]
    fn planting_into_bands() {
        let corpus = generate(&TreebankConfig {
            sentences: 80,
            planted_shallow: vec![PlantedTerm::new("hi_term", 20)],
            planted_deep: vec![PlantedTerm::new("lo_term", 20)],
            ..Default::default()
        });
        let t = &corpus.tree;
        let depth_of = |w: &str| -> Vec<u16> {
            t.ids()
                .filter(|&i| t.text(i).split_whitespace().any(|x| x == w))
                .map(|i| t.depth(i))
                .collect()
        };
        let hi = depth_of("hi_term");
        let lo = depth_of("lo_term");
        assert_eq!(hi.len(), 20);
        assert_eq!(lo.len(), 20);
        assert!(hi.iter().all(|&d| d <= 4));
        let min_lo = *lo.iter().min().unwrap();
        let max_hi = *hi.iter().max().unwrap();
        assert!(min_lo > max_hi, "deep band ({min_lo}) must sit below shallow ({max_hi})");
    }

    #[test]
    fn deterministic() {
        let cfg = TreebankConfig { sentences: 20, ..Default::default() };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.tree.len(), b.tree.len());
    }
}
