//! Zipf-distributed sampling for the background vocabulary.
//!
//! Real term-frequency distributions are heavy-tailed; the paper's random
//! query selection "within each frequency range" presupposes exactly such
//! a spread.  This is a classical inverse-CDF Zipf sampler with a
//! precomputed cumulative table (exact, not the rejection approximation —
//! vocabulary sizes here are small enough that the table wins).

use xtk_xml::testutil::Rng;

/// Zipf distribution over ranks `0..n` with exponent `s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler; `n >= 1`, `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "empty support");
        assert!(s > 0.0, "exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` iff the support is empty (never: `new` requires `n >= 1`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n` (rank 0 is the most frequent).
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.gen_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = Rng::seed_from_u64(42);
        let mut counts = vec![0usize; 1000];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[9] && counts[9] > counts[99]);
        // Rough Zipf shape: rank 0 ≈ 2^1.1 × rank 1... just check a 1.5x gap.
        assert!(counts[0] as f64 > 1.5 * counts[1] as f64);
    }

    #[test]
    fn all_ranks_reachable() {
        let z = Zipf::new(5, 0.8);
        let mut rng = Rng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..10_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 2.0);
        let mut rng = Rng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic]
    fn zero_support_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
