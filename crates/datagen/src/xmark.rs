//! The XMark-like corpus generator.
//!
//! XMark models an auction site; the paper runs it at scale factor 1
//! (113 MB) and reports results "similar" to DBLP.  This generator emits
//! the schema's main branches at comparable depth and fanout:
//!
//! ```text
//! site
//! ├── regions / (africa|asia|europe|namerica) / item { name, description / text / keyword* }
//! ├── people / person { name, emailaddress, profile / interest* }
//! ├── open_auctions / open_auction { initial, bidder* { increase }, annotation / description }
//! └── closed_auctions / closed_auction { price, annotation }
//! ```
//!
//! Planted terms go into item description text nodes (level 6) — deeper
//! than DBLP's titles, exercising the per-level machinery differently.

use crate::vocab::Vocab;
use crate::{plant_terms, PlantedTerm};
use xtk_xml::testutil::Rng;
use xtk_xml::tree::NodeId;
use xtk_xml::XmlTree;

/// Configuration of the XMark-like generator.
#[derive(Debug, Clone)]
pub struct XmarkConfig {
    /// Items per region (4 regions).
    pub items_per_region: usize,
    /// Number of person elements.
    pub people: usize,
    /// Number of open auctions.
    pub open_auctions: usize,
    /// Number of closed auctions.
    pub closed_auctions: usize,
    /// Background words per description text.
    pub description_words: usize,
    /// Background vocabulary size.
    pub vocab_size: usize,
    /// Zipf exponent.
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
    /// Terms planted into item description texts.
    pub planted: Vec<PlantedTerm>,
}

impl Default for XmarkConfig {
    fn default() -> Self {
        Self {
            items_per_region: 100,
            people: 100,
            open_auctions: 60,
            closed_auctions: 40,
            description_words: 10,
            vocab_size: 10_000,
            zipf_s: 1.07,
            seed: 0x31A7,
            planted: Vec::new(),
        }
    }
}

/// A generated XMark-like corpus.
#[derive(Debug)]
pub struct XmarkCorpus {
    /// The document.
    pub tree: XmlTree,
    /// Item description text nodes (planting targets).
    pub descriptions: Vec<NodeId>,
}

const REGIONS: [&str; 4] = ["africa", "asia", "europe", "namerica"];

/// Generates the corpus.
pub fn generate(cfg: &XmarkConfig) -> XmarkCorpus {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let vocab = Vocab::new(cfg.vocab_size, cfg.zipf_s);
    let mut tree = XmlTree::new();
    let site = tree.add_root("site");

    // regions / <region> / item / { name, description / text }
    let regions = tree.add_child(site, "regions");
    let mut descriptions = Vec::new();
    let mut item_id = 0usize;
    for region in REGIONS {
        let rnode = tree.add_child(regions, region);
        for _ in 0..cfg.items_per_region {
            let item = tree.add_child(rnode, "item");
            let idattr = tree.add_child(item, "@id");
            tree.append_text(idattr, &format!("item{item_id}"));
            item_id += 1;
            let name = tree.add_child(item, "name");
            tree.append_text(name, &vocab.word(&mut rng));
            let desc = tree.add_child(item, "description");
            let text = tree.add_child(desc, "text");
            let mut s = String::new();
            vocab.sentence_into(&mut rng, cfg.description_words, &mut s);
            tree.append_text(text, &s);
            descriptions.push(text);
        }
    }

    // people / person { name, emailaddress, profile / interest* }
    let people = tree.add_child(site, "people");
    for p in 0..cfg.people {
        let person = tree.add_child(people, "person");
        let name = tree.add_child(person, "name");
        tree.append_text(name, &crate::vocab::author_name(&mut rng, 997));
        let email = tree.add_child(person, "emailaddress");
        tree.append_text(email, &format!("mailto person{p} example com"));
        let profile = tree.add_child(person, "profile");
        for _ in 0..rng.gen_range(0..3usize) {
            let interest = tree.add_child(profile, "interest");
            tree.append_text(interest, &vocab.word(&mut rng));
        }
    }

    // open_auctions / open_auction { initial, bidder*/increase, annotation/description }
    let opens = tree.add_child(site, "open_auctions");
    for _ in 0..cfg.open_auctions {
        let oa = tree.add_child(opens, "open_auction");
        let initial = tree.add_child(oa, "initial");
        tree.append_text(initial, &format!("{}", rng.gen_range(1..500u32)));
        for _ in 0..rng.gen_range(0..4usize) {
            let bidder = tree.add_child(oa, "bidder");
            let inc = tree.add_child(bidder, "increase");
            tree.append_text(inc, &format!("{}", rng.gen_range(1..50u32)));
        }
        let ann = tree.add_child(oa, "annotation");
        let d = tree.add_child(ann, "description");
        let mut s = String::new();
        vocab.sentence_into(&mut rng, cfg.description_words / 2, &mut s);
        tree.append_text(d, &s);
    }

    // closed_auctions / closed_auction { price, annotation }
    let closed = tree.add_child(site, "closed_auctions");
    for _ in 0..cfg.closed_auctions {
        let ca = tree.add_child(closed, "closed_auction");
        let price = tree.add_child(ca, "price");
        tree.append_text(price, &format!("{}", rng.gen_range(1..1000u32)));
        let ann = tree.add_child(ca, "annotation");
        tree.append_text(ann, &vocab.word(&mut rng));
    }

    plant_terms(&mut tree, &descriptions, &cfg.planted, &mut rng);
    XmarkCorpus { tree, descriptions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtk_xml::stats::TreeStats;

    #[test]
    fn schema_branches_exist() {
        let corpus = generate(&XmarkConfig {
            items_per_region: 5,
            people: 4,
            open_auctions: 3,
            closed_auctions: 2,
            ..Default::default()
        });
        let t = &corpus.tree;
        let labels: std::collections::BTreeSet<&str> =
            t.ids().map(|i| t.label(i)).collect();
        for l in ["regions", "asia", "item", "people", "person", "open_auctions", "bidder", "closed_auctions"] {
            assert!(labels.contains(l), "missing {l}");
        }
        let stats = TreeStats::compute(t);
        assert!(stats.max_depth >= 6, "XMark shape is deeper than DBLP");
        assert_eq!(corpus.descriptions.len(), 20);
        for &d in &corpus.descriptions {
            assert_eq!(t.depth(d), 6); // site/regions/region/item/description/text
        }
    }

    #[test]
    fn planting_into_descriptions() {
        let corpus = generate(&XmarkConfig {
            items_per_region: 10,
            planted: vec![PlantedTerm::new("auctionterm", 15)],
            ..Default::default()
        });
        let n = corpus
            .descriptions
            .iter()
            .filter(|&&d| corpus.tree.text(d).split_whitespace().any(|w| w == "auctionterm"))
            .count();
        assert_eq!(n, 15);
    }

    #[test]
    fn deterministic() {
        let cfg = XmarkConfig { items_per_region: 3, people: 3, ..Default::default() };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.tree.len(), b.tree.len());
    }
}
