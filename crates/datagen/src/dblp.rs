//! The DBLP-like corpus generator.
//!
//! The paper re-groups the (originally flat) DBLP document "firstly by
//! conference/journal names, and then by years", yielding
//!
//! ```text
//! dblp / conf / year / paper { @key, title, author* }
//! ```
//!
//! which is the shape generated here (titles at level 5, authors at level
//! 5, attribute pseudo-nodes at level 5).  Background title text is
//! Zipfian; planted terms land in titles (and optionally authors, to
//! spread posting depths) with exact frequencies.

use crate::vocab::{author_name, conf_name, Vocab};
use crate::{plant_terms, PlantedTerm};
use xtk_xml::testutil::Rng;
use xtk_xml::tree::NodeId;
use xtk_xml::XmlTree;

/// Configuration of the DBLP-like generator.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Number of conference elements.
    pub conferences: usize,
    /// Year elements per conference.
    pub years_per_conf: usize,
    /// Paper elements per year.
    pub papers_per_year: usize,
    /// Background words per title.
    pub title_words: usize,
    /// Authors per paper.
    pub authors_per_paper: usize,
    /// Background vocabulary size.
    pub vocab_size: usize,
    /// Zipf exponent of the background vocabulary.
    pub zipf_s: f64,
    /// RNG seed — same seed, same corpus.
    pub seed: u64,
    /// Terms planted with exact frequencies/correlations.
    pub planted: Vec<PlantedTerm>,
}

impl Default for DblpConfig {
    fn default() -> Self {
        Self {
            conferences: 50,
            years_per_conf: 5,
            papers_per_year: 20,
            title_words: 8,
            authors_per_paper: 2,
            vocab_size: 10_000,
            zipf_s: 1.07,
            seed: 0xD812,
            planted: Vec::new(),
        }
    }
}

impl DblpConfig {
    /// Total number of paper elements (= planting capacity of titles).
    pub fn paper_count(&self) -> usize {
        self.conferences * self.years_per_conf * self.papers_per_year
    }
}

/// A generated corpus: the tree plus the node groups planting used, so
/// tests and workloads can target specific context levels.
#[derive(Debug)]
pub struct DblpCorpus {
    /// The document.
    pub tree: XmlTree,
    /// All title nodes (document order).
    pub titles: Vec<NodeId>,
    /// All author nodes (document order).
    pub authors: Vec<NodeId>,
}

/// Generates the corpus.
pub fn generate(cfg: &DblpConfig) -> DblpCorpus {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let vocab = Vocab::new(cfg.vocab_size, cfg.zipf_s);
    let mut tree = XmlTree::with_capacity(
        2 + cfg.paper_count() * (3 + cfg.authors_per_paper),
    );
    let root = tree.add_root("dblp");
    let mut titles = Vec::with_capacity(cfg.paper_count());
    let mut authors = Vec::with_capacity(cfg.paper_count() * cfg.authors_per_paper);
    let mut key = 0usize;
    for c in 0..cfg.conferences {
        let conf = tree.add_child(root, "conf");
        let name = tree.add_child(conf, "@name");
        tree.append_text(name, &conf_name(c));
        for y in 0..cfg.years_per_conf {
            let year = tree.add_child(conf, "year");
            let yv = tree.add_child(year, "@value");
            tree.append_text(yv, &format!("{}", 1970 + y));
            for _ in 0..cfg.papers_per_year {
                let paper = tree.add_child(year, "paper");
                let kattr = tree.add_child(paper, "@key");
                tree.append_text(kattr, &format!("key{key}"));
                key += 1;
                let title = tree.add_child(paper, "title");
                let mut text = String::new();
                vocab.sentence_into(&mut rng, cfg.title_words, &mut text);
                tree.append_text(title, &text);
                titles.push(title);
                for _ in 0..cfg.authors_per_paper {
                    let author = tree.add_child(paper, "author");
                    tree.append_text(author, &author_name(&mut rng, 997));
                    authors.push(author);
                }
            }
        }
    }
    plant_terms(&mut tree, &titles, &cfg.planted, &mut rng);
    DblpCorpus { tree, titles, authors }
}

/// Plants additional terms into *author* nodes of an existing corpus —
/// used to vary the posting depth mix.
pub fn plant_into_authors(corpus: &mut DblpCorpus, planted: &[PlantedTerm], seed: u64) {
    let mut rng = Rng::seed_from_u64(seed);
    let authors = corpus.authors.clone();
    plant_terms(&mut corpus.tree, &authors, planted, &mut rng);
}

/// Convenience used by benches: random paper hosts as a slice for manual
/// planting schemes.
pub fn random_titles(corpus: &DblpCorpus, n: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| corpus.titles[rng.gen_range(0..corpus.titles.len())]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtk_xml::stats::TreeStats;

    #[test]
    fn structure_matches_regrouped_dblp() {
        let cfg = DblpConfig {
            conferences: 3,
            years_per_conf: 2,
            papers_per_year: 4,
            ..Default::default()
        };
        let corpus = generate(&cfg);
        let t = &corpus.tree;
        let stats = TreeStats::compute(t);
        // dblp(1) / conf(2) / year(3) / paper(4) / title|author|@key(5)
        assert_eq!(stats.max_depth, 5);
        assert_eq!(corpus.titles.len(), 24);
        assert_eq!(corpus.authors.len(), 48);
        for &title in &corpus.titles {
            assert_eq!(t.depth(title), 5);
            assert_eq!(t.label(title), "title");
            assert_eq!(t.text(title).split_whitespace().count(), cfg.title_words);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = DblpConfig { conferences: 2, years_per_conf: 2, papers_per_year: 3, ..Default::default() };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.tree.len(), b.tree.len());
        for (x, y) in a.tree.ids().zip(b.tree.ids()) {
            assert_eq!(a.tree.text(x), b.tree.text(y));
        }
    }

    #[test]
    fn planted_frequencies_are_exact() {
        let cfg = DblpConfig {
            conferences: 5,
            years_per_conf: 4,
            papers_per_year: 10,
            planted: vec![
                PlantedTerm::new("hot", 120),
                PlantedTerm::correlated("warm", 60, "hot", 0.8),
            ],
            ..Default::default()
        };
        let corpus = generate(&cfg);
        let count = |w: &str| {
            corpus
                .titles
                .iter()
                .filter(|&&t| corpus.tree.text(t).split_whitespace().any(|x| x == w))
                .count()
        };
        assert_eq!(count("hot"), 120);
        assert_eq!(count("warm"), 60);
        // Strong (not necessarily total) co-occurrence.
        let both = corpus
            .titles
            .iter()
            .filter(|&&t| {
                let txt = corpus.tree.text(t);
                let mut has_hot = false;
                let mut has_warm = false;
                for w in txt.split_whitespace() {
                    has_hot |= w == "hot";
                    has_warm |= w == "warm";
                }
                has_hot && has_warm
            })
            .count();
        assert!(both >= 30, "expected strong correlation, got {both}");
    }

    #[test]
    fn author_planting_spreads_depths() {
        let cfg = DblpConfig { conferences: 2, years_per_conf: 2, papers_per_year: 5, ..Default::default() };
        let mut corpus = generate(&cfg);
        plant_into_authors(&mut corpus, &[PlantedTerm::new("deepterm", 7)], 1);
        let n = corpus
            .authors
            .iter()
            .filter(|&&a| corpus.tree.text(a).contains("deepterm"))
            .count();
        assert_eq!(n, 7);
    }
}
