//! Synthetic vocabularies: background words, author names, venue names.

use crate::zipf::Zipf;
use xtk_xml::testutil::Rng;

/// A Zipf-weighted background vocabulary of `w<rank>` words.
#[derive(Debug, Clone)]
pub struct Vocab {
    zipf: Zipf,
}

impl Vocab {
    /// `n` distinct words, Zipf exponent `s` (≈1.05–1.2 models natural
    /// text).
    pub fn new(n: usize, s: f64) -> Self {
        Self { zipf: Zipf::new(n, s) }
    }

    /// Number of distinct words.
    pub fn len(&self) -> usize {
        self.zipf.len()
    }

    /// `true` iff the vocabulary is empty (never by construction).
    pub fn is_empty(&self) -> bool {
        self.zipf.is_empty()
    }

    /// Samples one word.
    pub fn word(&self, rng: &mut Rng) -> String {
        format!("w{}", self.zipf.sample(rng))
    }

    /// Appends `count` sampled words to `out`, space-separated.
    pub fn sentence_into(&self, rng: &mut Rng, count: usize, out: &mut String) {
        for i in 0..count {
            if i > 0 || !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&self.word(rng));
        }
    }
}

/// Deterministic author-name pool (`firstN lastM` pairs).
pub fn author_name(rng: &mut Rng, pool: usize) -> String {
    let f = rng.gen_range(0..pool);
    let l = rng.gen_range(0..pool);
    format!("first{f} last{l}")
}

/// Conference name for index `i` (shared prefix exercises tokenization).
pub fn conf_name(i: usize) -> String {
    format!("conf{i}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_prefixed_and_bounded() {
        let v = Vocab::new(100, 1.1);
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..100 {
            let w = v.word(&mut rng);
            assert!(w.starts_with('w'));
            let rank: usize = w[1..].parse().unwrap();
            assert!(rank < 100);
        }
    }

    #[test]
    fn sentence_has_requested_words() {
        let v = Vocab::new(50, 1.0);
        let mut rng = Rng::seed_from_u64(3);
        let mut s = String::new();
        v.sentence_into(&mut rng, 7, &mut s);
        assert_eq!(s.split_whitespace().count(), 7);
    }

    #[test]
    fn names_deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(9);
        let mut b = Rng::seed_from_u64(9);
        assert_eq!(author_name(&mut a, 10), author_name(&mut b, 10));
    }
}
