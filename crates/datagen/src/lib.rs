#![forbid(unsafe_code)]

//! Deterministic corpus and workload generation for the `xtk` experiments.
//!
//! The paper evaluates on DBLP (496 MB, re-grouped conference → year →
//! paper) and XMark scale 1 (113 MB).  Neither raw data set ships with
//! this reproduction, so this crate generates structurally faithful
//! substitutes (see DESIGN.md's substitution table):
//!
//! * [`dblp`] — `dblp / conf / year / paper { title, author*, @key }`,
//!   the exact shape the paper describes after its re-grouping;
//! * [`xmark`] — the XMark auction-site schema (regions/items, people,
//!   open and closed auctions) at comparable depth and fanout.
//!
//! Background text is drawn from a Zipf-distributed synthetic vocabulary
//! ([`zipf`], [`vocab`]).  The experiments' control variables — keyword
//! **frequency** and keyword **correlation**, the two factors the paper
//! says execution time depends on — are *planted exactly*: a
//! [`PlantedTerm`] states its posting-list length and, optionally, the
//! probability of co-occurring with another planted term in the same
//! element.  [`queries`] assembles the per-figure query workloads.

pub mod dblp;
pub mod queries;
pub mod treebank;
pub mod vocab;
pub mod xmark;
pub mod zipf;

use xtk_xml::testutil::Rng;
use xtk_xml::tree::NodeId;
use xtk_xml::XmlTree;

/// A term planted with an exact corpus frequency.
#[derive(Debug, Clone)]
pub struct PlantedTerm {
    /// The term text (must not collide with the background vocabulary;
    /// background words are `w<number>`, so anything else is safe).
    pub term: String,
    /// Exact number of nodes that will directly contain the term (the
    /// posting-list length).
    pub occurrences: usize,
    /// When `Some((other, rho))`: each occurrence is placed, with
    /// probability `rho`, into an element that already contains `other`
    /// (which must have been planted earlier in the list).  This is the
    /// correlation control for Fig. 10.
    pub colocate_with: Option<(String, f64)>,
}

impl PlantedTerm {
    /// An independent (uncorrelated) planted term.
    pub fn new(term: impl Into<String>, occurrences: usize) -> Self {
        Self { term: term.into(), occurrences, colocate_with: None }
    }

    /// A term co-occurring with `other` with probability `rho`.
    pub fn correlated(
        term: impl Into<String>,
        occurrences: usize,
        other: impl Into<String>,
        rho: f64,
    ) -> Self {
        Self { term: term.into(), occurrences, colocate_with: Some((other.into(), rho)) }
    }
}

/// Plants terms into the given candidate text nodes with exact
/// frequencies and the requested co-occurrence structure.
///
/// Shared by the DBLP and XMark generators.  Panics if a term wants more
/// occurrences than there are candidate nodes.
pub(crate) fn plant_terms(
    tree: &mut XmlTree,
    candidates: &[NodeId],
    planted: &[PlantedTerm],
    rng: &mut Rng,
) {
    use std::collections::HashMap;
    let mut homes: HashMap<&str, Vec<NodeId>> = HashMap::new();
    for p in planted {
        assert!(
            p.occurrences <= candidates.len(),
            "cannot plant {} occurrences of {:?} into {} candidate nodes",
            p.occurrences,
            p.term,
            candidates.len()
        );
        let mut chosen: Vec<NodeId> = Vec::with_capacity(p.occurrences);
        let mut used = std::collections::HashSet::new();
        let partner: Option<(&Vec<NodeId>, f64)> = p.colocate_with.as_ref().and_then(|(other, rho)| {
            let hs = homes.get(other.as_str());
            assert!(hs.is_some(), "{:?} must be planted before {:?}", other, p.term);
            hs.map(|hs| (hs, *rho))
        });
        while chosen.len() < p.occurrences {
            let pick = match partner {
                Some((hs, rho)) if !hs.is_empty() && rng.gen_bool(rho) => {
                    hs[rng.gen_range(0..hs.len())]
                }
                _ => candidates[rng.gen_range(0..candidates.len())],
            };
            if used.insert(pick) {
                chosen.push(pick);
            }
        }
        for &n in &chosen {
            tree.append_text(n, &p.term);
        }
        homes.insert(p.term.as_str(), chosen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planting_hits_exact_frequencies() {
        let mut tree = XmlTree::new();
        let root = tree.add_root("r");
        let hosts: Vec<NodeId> = (0..100).map(|i| tree.add_child(root, format!("h{i}"))).collect();
        let mut rng = Rng::seed_from_u64(7);
        plant_terms(
            &mut tree,
            &hosts,
            &[PlantedTerm::new("alpha", 30), PlantedTerm::correlated("beta", 20, "alpha", 1.0)],
            &mut rng,
        );
        let count = |w: &str| {
            hosts
                .iter()
                .filter(|&&h| tree.text(h).split_whitespace().any(|t| t == w))
                .count()
        };
        assert_eq!(count("alpha"), 30);
        assert_eq!(count("beta"), 20);
        for &h in &hosts {
            let text = tree.text(h);
            if text.contains("beta") {
                assert!(text.contains("alpha"));
            }
        }
    }

    #[test]
    #[should_panic]
    fn overplanting_panics() {
        let mut tree = XmlTree::new();
        let root = tree.add_root("r");
        let hosts = vec![tree.add_child(root, "h")];
        let mut rng = Rng::seed_from_u64(7);
        plant_terms(&mut tree, &hosts, &[PlantedTerm::new("x", 5)], &mut rng);
    }
}
