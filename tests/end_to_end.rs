//! Cross-crate integration: generate a corpus → serialize to XML →
//! re-parse → index → persist the columnar index → reload → query with
//! every engine → agreement and ranking checks.

use xtk::core::engine::Engine;
use xtk::core::query::Semantics;
use xtk::core::request::{QueryAlgorithm, QueryRequest};
use xtk::core::result::sort_ranked;
use xtk::datagen::dblp::{generate, DblpConfig};
use xtk::datagen::PlantedTerm;
use xtk::index::disk::{read_index, write_index, WriteIndexOptions};
use xtk::xml::writer::{write_document, WriteOptions};

fn corpus_engine() -> Engine {
    let cfg = DblpConfig {
        conferences: 20,
        years_per_conf: 4,
        papers_per_year: 10,
        planted: vec![
            PlantedTerm::new("planted1", 120),
            PlantedTerm::correlated("planted2", 60, "planted1", 0.5),
            PlantedTerm::new("planted3", 12),
        ],
        ..Default::default()
    };
    Engine::new(generate(&cfg).tree)
}

#[test]
fn generated_corpus_survives_xml_roundtrip() {
    let cfg = DblpConfig {
        conferences: 4,
        years_per_conf: 2,
        papers_per_year: 5,
        planted: vec![PlantedTerm::new("roundtrip", 10)],
        ..Default::default()
    };
    let tree = generate(&cfg).tree;
    let xml = write_document(&tree, WriteOptions { pretty: true });
    let back = xtk::xml::parse(&xml).expect("generated XML re-parses");
    assert_eq!(back.len(), tree.len());
    // Same query results on both.
    let e1 = Engine::new(tree);
    let e2 = Engine::new(back);
    let q1 = e1.query("roundtrip").unwrap();
    let q2 = e2.query("roundtrip").unwrap();
    let req = QueryRequest::complete(Semantics::Slca);
    let r1 = e1.run(&q1, &req).results;
    let r2 = e2.run(&q2, &req).results;
    assert_eq!(r1.len(), r2.len());
    assert_eq!(r1.len(), 10);
}

#[test]
fn engines_agree_on_generated_corpus() {
    let engine = corpus_engine();
    for words in [
        vec!["planted1", "planted2"],
        vec!["planted1", "planted3"],
        vec!["planted1", "planted2", "planted3"],
    ] {
        let q = engine.query(&words.join(" ")).unwrap();
        // SLCA: all three complete engines agree exactly.
        let mut sets: Vec<Vec<_>> = [
            QueryAlgorithm::JoinBased,
            QueryAlgorithm::StackBased,
            QueryAlgorithm::IndexBased,
        ]
        .iter()
        .map(|&a| {
            let req = QueryRequest::complete(Semantics::Slca).unranked().with_algorithm(a);
            let mut v: Vec<_> =
                engine.run(&q, &req).results.into_iter().map(|r| r.node).collect();
            v.sort();
            v
        })
        .collect();
        let first = sets.remove(0);
        for s in sets {
            assert_eq!(s, first, "SLCA disagreement on {words:?}");
        }
        // ELCA: join-based and stack-based agree (operational variant).
        let elca = QueryRequest::complete(Semantics::Elca).unranked();
        let mut a: Vec<_> = engine
            .run(&q, &elca.with_algorithm(QueryAlgorithm::JoinBased))
            .results
            .into_iter()
            .map(|r| r.node)
            .collect();
        let mut b: Vec<_> = engine
            .run(&q, &elca.with_algorithm(QueryAlgorithm::StackBased))
            .results
            .into_iter()
            .map(|r| r.node)
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "ELCA disagreement on {words:?}");
    }
}

#[test]
fn topk_is_the_ranked_prefix() {
    let engine = corpus_engine();
    let q = engine.query("planted1 planted2").unwrap();
    let mut complete = engine.run(&q, &QueryRequest::complete(Semantics::Elca)).results;
    sort_ranked(&mut complete);
    for k in [1, 3, 10, 50] {
        let top = engine
            .run(&q, &QueryRequest::top_k(k, Semantics::Elca).with_algorithm(QueryAlgorithm::TopKJoin))
            .results;
        assert_eq!(top.len(), k.min(complete.len()));
        for (i, r) in top.iter().enumerate() {
            assert!(
                (r.score - complete[i].score).abs() < 1e-4,
                "k={k} rank {i}: {} vs {}",
                r.score,
                complete[i].score
            );
        }
    }
}

#[test]
fn hybrid_routes_and_matches_topk_scores() {
    let engine = corpus_engine();
    // Correlated pair: should go to the top-K join.
    let q = engine.query("planted1 planted2").unwrap();
    let hy = engine.run(&q, &QueryRequest::top_k(5, Semantics::Elca)).results;
    let tk = engine
        .run(&q, &QueryRequest::top_k(5, Semantics::Elca).with_algorithm(QueryAlgorithm::TopKJoin))
        .results;
    assert_eq!(hy.len(), tk.len());
    for (a, b) in hy.iter().zip(&tk) {
        assert!((a.score - b.score).abs() < 1e-4);
    }
}

#[test]
fn persistence_roundtrip_on_generated_corpus() {
    let engine = corpus_engine();
    let path = std::env::temp_dir().join(format!("xtk_e2e_{}.bin", std::process::id()));
    write_index(engine.index(), &path, WriteIndexOptions { include_scores: true, ..Default::default() }).unwrap();
    let loaded = read_index(&path).unwrap();
    assert_eq!(loaded.terms.len(), engine.index().vocab_size());
    for term in ["planted1", "planted2", "planted3"] {
        let orig = engine.index().term_by_str(term).unwrap();
        let disk = &loaded.terms[term];
        assert_eq!(disk.columns, orig.columns, "{term} columns");
        assert_eq!(disk.scores.as_ref().unwrap().len(), orig.scores.len());
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn rdil_and_indexed_agree_on_formal_ranking() {
    let engine = corpus_engine();
    let q = engine.query("planted1 planted3").unwrap();
    let mut complete: Vec<_> = engine
        .index()
        .term_by_str("planted1")
        .map(|_| {
            xtk::core::baseline::indexed::indexed_search(
                engine.index(),
                &q,
                &xtk::core::baseline::indexed::IndexedOptions {
                    semantics: Semantics::Elca,
                    with_scores: true,
                },
            )
        })
        .unwrap();
    sort_ranked(&mut complete);
    let top = engine
        .run(&q, &QueryRequest::top_k(5, Semantics::Elca).with_algorithm(QueryAlgorithm::Rdil))
        .results;
    assert_eq!(top.len(), 5.min(complete.len()));
    for (i, r) in top.iter().enumerate() {
        assert!((r.score - complete[i].score).abs() < 1e-4, "rank {i}");
    }
}
